//! Offline API-compatible subset of the `criterion` crate.
//!
//! The NetCo reproduction builds in environments without crates.io access,
//! so the workspace vendors the benchmarking surface it uses: `Criterion`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up briefly, then runs timed
//! batches until `CRITERION_MEASURE_MS` (default 300 ms) of samples are
//! collected, and reports the median, minimum and maximum ns/iteration on
//! stdout. No statistical regression analysis and no HTML reports — just
//! stable comparable numbers for the perf trajectory in `BENCH_*.json`.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized (accepted for API compatibility; the shim
/// always times per-batch with setup excluded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// One benchmark's collected samples, in ns/iter.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark id.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest observed nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest observed nanoseconds per iteration.
    pub max_ns: f64,
}

/// The benchmark harness.
pub struct Criterion {
    measure: Duration,
    warmup: Duration,
    samples: Vec<Sample>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            measure: Duration::from_millis(ms),
            warmup: Duration::from_millis(ms / 6 + 10),
            samples: Vec::new(),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility with real criterion; no CLI parsing.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Sets the measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measure = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            measure: self.measure,
            warmup: self.warmup,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        let mut ns = b.samples_ns;
        if ns.is_empty() {
            ns.push(0.0);
        }
        ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let sample = Sample {
            name: id.to_string(),
            median_ns: ns[ns.len() / 2],
            min_ns: ns[0],
            max_ns: ns[ns.len() - 1],
        };
        println!(
            "{:<40} time: [{} {} {}]",
            sample.name,
            fmt_ns(sample.min_ns),
            fmt_ns(sample.median_ns),
            fmt_ns(sample.max_ns),
        );
        self.samples.push(sample);
        self
    }

    /// All samples collected so far (used by `perf_report`).
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} us", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    measure: Duration,
    warmup: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and discover a batch size that runs ~1ms per sample.
        let mut batch: u64 = 1;
        let warmup_end = Instant::now() + self.warmup;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if Instant::now() >= warmup_end {
                break;
            }
            if dt < Duration::from_millis(1) {
                batch = batch.saturating_mul(2);
            }
        }
        let deadline = Instant::now() + self.measure;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            self.samples_ns.push(dt.as_nanos() as f64 / batch as f64);
        }
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm up.
        let warmup_end = Instant::now() + self.warmup;
        while Instant::now() < warmup_end {
            let input = setup();
            black_box(routine(input));
        }
        let deadline = Instant::now() + self.measure;
        while Instant::now() < deadline {
            // Batch a handful of prepared inputs per timed region so cheap
            // routines are not swamped by timer overhead.
            const BATCH: usize = 16;
            let inputs: Vec<I> = (0..BATCH).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let dt = t0.elapsed();
            self.samples_ns.push(dt.as_nanos() as f64 / BATCH as f64);
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        std::env::set_var("CRITERION_MEASURE_MS", "10");
        let mut c = Criterion::default();
        c.bench_function("spin", |b| b.iter(|| black_box(3u64).wrapping_mul(7)));
        assert_eq!(c.samples().len(), 1);
        assert!(c.samples()[0].median_ns >= 0.0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        std::env::set_var("CRITERION_MEASURE_MS", "10");
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        assert!(!c.samples().is_empty());
    }
}
