//! Property tests for the deterministic log-linear histogram: bucket
//! boundaries bracket every value, quantiles are monotone and bounded by
//! the exact extrema, and merging is associative, commutative and
//! equivalent to recording the concatenated stream.

use netco_telemetry::{bucket_index, bucket_lower_bound, LogLinearHistogram, NUM_BUCKETS};
use proptest::collection::vec;
use proptest::prelude::*;

fn build(values: &[u64]) -> LogLinearHistogram {
    let mut h = LogLinearHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn bucket_boundaries_bracket_every_value(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(bucket_lower_bound(i) <= v, "lower bound exceeds value");
        if i + 1 < NUM_BUCKETS {
            prop_assert!(v < bucket_lower_bound(i + 1), "value reaches next bucket");
        }
    }

    #[test]
    fn bucket_lower_bounds_are_strictly_increasing(i in 0usize..NUM_BUCKETS - 1) {
        prop_assert!(bucket_lower_bound(i) < bucket_lower_bound(i + 1));
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(values in vec(any::<u64>(), 1..300)) {
        let h = build(&values);
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.min, *values.iter().min().unwrap());
        prop_assert_eq!(snap.max, *values.iter().max().unwrap());
        prop_assert!(snap.p50 <= snap.p90);
        prop_assert!(snap.p90 <= snap.p99);
        prop_assert!(snap.p99 <= snap.max);
        // Quantiles report bucket lower bounds clamped by the exact max,
        // so the lowest rank never exceeds the minimum and the highest
        // rank never exceeds (but may undershoot) the maximum.
        prop_assert!(h.quantile(0.0) <= snap.min);
        prop_assert!(h.quantile(1.0) <= snap.max);
        prop_assert!(h.quantile(0.99) <= h.quantile(1.0));
    }

    #[test]
    fn merge_is_associative_commutative_and_stream_equivalent(
        a in vec(any::<u64>(), 0..120),
        b in vec(any::<u64>(), 0..120),
        c in vec(any::<u64>(), 0..120),
    ) {
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));

        // (a ⊎ b) ⊎ c == a ⊎ (b ⊎ c)
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // a ⊎ b == b ⊎ a
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // Merging equals recording the concatenated stream.
        let concat: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &build(&concat));
    }
}
