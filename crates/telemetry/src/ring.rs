//! A bounded drop-oldest ring buffer — the flight-recorder backing store
//! for trace events and packet traces. Keeping the *most recent* N
//! entries matches the black-box use case: when something goes wrong you
//! want the run-up to the failure, not the boot sequence.

use std::collections::VecDeque;

/// A bounded FIFO that drops its oldest entry on overflow and counts how
/// many entries were lost.
#[derive(Debug, Clone)]
pub struct FlightRing<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> FlightRing<T> {
    /// A ring holding at most `capacity` entries (0 is promoted to 1).
    pub fn new(capacity: usize) -> FlightRing<T> {
        FlightRing {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// An effectively unbounded ring.
    pub fn unbounded() -> FlightRing<T> {
        FlightRing::new(usize::MAX)
    }

    /// Appends an entry, evicting the oldest one if the ring is full.
    pub fn push(&mut self, entry: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(entry);
    }

    /// Retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many entries were evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Removes all entries (the dropped count is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_oldest_on_overflow() {
        let mut ring = FlightRing::new(3);
        for i in 0..5 {
            ring.push(i);
        }
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(ring.dropped(), 2);
    }
}
