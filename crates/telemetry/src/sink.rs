//! The per-world telemetry sink.
//!
//! A [`TelemetrySink`] is what instrumented code holds: a cheaply
//! clonable handle that is either *disabled* (`inner == None`, the
//! default — every call is a branch on a null pointer and returns inert
//! metric handles) or *enabled* (shared state holding the metrics
//! registry, the span tracer and the packet-lifecycle recorder).
//!
//! The shared state is `Arc` + `Mutex` so the sink — and every device
//! holding metric handles cloned from it — is `Send + Sync`: the
//! space-parallel world executor moves devices onto region worker
//! threads, and region metric shards are folded back into one registry
//! deterministically (see [`TelemetrySink::merge_registry`]).

use std::sync::{Arc, Mutex};

use crate::lifecycle::PacketLifecycle;
use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use crate::trace::Tracer;

struct SinkInner {
    registry: Mutex<MetricsRegistry>,
    tracer: Mutex<Tracer>,
    lifecycle: Mutex<PacketLifecycle>,
}

/// A shared handle to one world's telemetry plane (or to nothing).
#[derive(Clone, Default)]
pub struct TelemetrySink {
    inner: Option<Arc<SinkInner>>,
}

impl TelemetrySink {
    /// The inert sink: every operation is a no-op and every handle it
    /// returns is disabled.
    pub fn disabled() -> TelemetrySink {
        TelemetrySink { inner: None }
    }

    /// A live sink with an empty registry and trace ring.
    pub fn enabled() -> TelemetrySink {
        let mut registry = MetricsRegistry::new();
        let lifecycle = PacketLifecycle::new(&mut registry);
        TelemetrySink {
            inner: Some(Arc::new(SinkInner {
                registry: Mutex::new(registry),
                tracer: Mutex::new(Tracer::default()),
                lifecycle: Mutex::new(lifecycle),
            })),
        }
    }

    /// Whether this sink records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Gets or creates a registered counter (inert when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.lock().expect("registry lock").counter(name),
            None => Counter::disabled(),
        }
    }

    /// Gets or creates a registered gauge (inert when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.registry.lock().expect("registry lock").gauge(name),
            None => Gauge::disabled(),
        }
    }

    /// Gets or creates a registered histogram (inert when disabled).
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(inner) => inner
                .registry
                .lock()
                .expect("registry lock")
                .histogram(name),
            None => Histogram::disabled(),
        }
    }

    /// Adopts a detached counter into the registry under `name`; no-op
    /// when disabled (the handle keeps its private storage).
    pub fn adopt_counter(&self, name: &str, handle: &mut Counter) {
        if let Some(inner) = &self.inner {
            inner
                .registry
                .lock()
                .expect("registry lock")
                .adopt_counter(name, handle);
        }
    }

    /// Adopts a detached gauge into the registry under `name`; no-op
    /// when disabled.
    pub fn adopt_gauge(&self, name: &str, handle: &mut Gauge) {
        if let Some(inner) = &self.inner {
            inner
                .registry
                .lock()
                .expect("registry lock")
                .adopt_gauge(name, handle);
        }
    }

    /// Adopts a detached histogram into the registry under `name`; no-op
    /// when disabled.
    pub fn adopt_histogram(&self, name: &str, handle: &mut Histogram) {
        if let Some(inner) = &self.inner {
            inner
                .registry
                .lock()
                .expect("registry lock")
                .adopt_histogram(name, handle);
        }
    }

    /// Canonical JSON snapshot of every registered metric (`"{}"` plus a
    /// newline when disabled, so callers can always write a valid file).
    pub fn metrics_json(&self) -> String {
        match &self.inner {
            Some(inner) => inner.registry.lock().expect("registry lock").render_json(),
            None => String::from("{}\n"),
        }
    }

    /// Opens a span (no-op when disabled).
    pub fn span_begin(&self, process: &str, track: &str, name: &str, ts_ns: u64) {
        if let Some(inner) = &self.inner {
            inner
                .tracer
                .lock()
                .expect("tracer lock")
                .span_begin(process, track, name, ts_ns);
        }
    }

    /// Closes a span (no-op when disabled).
    pub fn span_end(&self, process: &str, track: &str, name: &str, ts_ns: u64) {
        if let Some(inner) = &self.inner {
            inner
                .tracer
                .lock()
                .expect("tracer lock")
                .span_end(process, track, name, ts_ns);
        }
    }

    /// Records a point event (no-op when disabled).
    pub fn instant(&self, process: &str, track: &str, name: &str, ts_ns: u64) {
        if let Some(inner) = &self.inner {
            inner
                .tracer
                .lock()
                .expect("tracer lock")
                .instant(process, track, name, ts_ns);
        }
    }

    /// Chrome trace-event JSON of the retained spans (an empty but valid
    /// document when disabled).
    pub fn trace_json(&self) -> String {
        match &self.inner {
            Some(inner) => inner.tracer.lock().expect("tracer lock").render_json(),
            None => String::from("{\"traceEvents\": [\n\n],\n\"displayTimeUnit\": \"ms\"}\n"),
        }
    }

    /// Events evicted from the bounded trace ring so far.
    pub fn trace_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            inner.tracer.lock().expect("tracer lock").dropped()
        })
    }

    /// Tags a frame at hub ingress (no-op when disabled).
    #[inline]
    pub fn lifecycle_hub_ingress(&self, key: u128, ts_ns: u64) {
        if let Some(inner) = &self.inner {
            inner
                .lifecycle
                .lock()
                .expect("lifecycle lock")
                .hub_ingress(key, ts_ns);
        }
    }

    /// Records a frame's hub → replica egress (no-op when disabled).
    #[inline]
    pub fn lifecycle_replica_egress(&self, key: u128, ts_ns: u64) {
        if let Some(inner) = &self.inner {
            inner
                .lifecycle
                .lock()
                .expect("lifecycle lock")
                .replica_egress(key, ts_ns);
        }
    }

    /// Records the compare observing a frame copy (no-op when disabled).
    #[inline]
    pub fn lifecycle_observe(&self, key: u128, ts_ns: u64) {
        if let Some(inner) = &self.inner {
            inner
                .lifecycle
                .lock()
                .expect("lifecycle lock")
                .observe(key, ts_ns);
        }
    }

    /// Closes a frame's flight with a release verdict (no-op when
    /// disabled).
    #[inline]
    pub fn lifecycle_release(&self, key: u128, ts_ns: u64) {
        if let Some(inner) = &self.inner {
            inner
                .lifecycle
                .lock()
                .expect("lifecycle lock")
                .release(key, ts_ns);
        }
    }

    /// Closes a frame's flight with a drop verdict under
    /// `lifecycle.dropped.<reason>` (no-op when disabled).
    #[inline]
    pub fn lifecycle_drop(&self, key: u128, ts_ns: u64, reason: &str) {
        if let Some(inner) = &self.inner {
            inner.lifecycle.lock().expect("lifecycle lock").drop_frame(
                &mut inner.registry.lock().expect("registry lock"),
                key,
                ts_ns,
                reason,
            );
        }
    }

    /// Folds a region shard's registry into this sink's registry
    /// (counters add, gauges take element-wise maxima, histograms merge
    /// bucket-wise). Call in ascending region order for deterministic
    /// output; no-op when disabled.
    pub fn merge_registry(&self, shard: &MetricsRegistry) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().expect("registry lock").merge(shard);
        }
    }

    /// Folds another sink's registry into this one (see
    /// [`merge_registry`](TelemetrySink::merge_registry)). No-op when
    /// either sink is disabled or when both are the same sink.
    pub fn merge_sink(&self, shard: &TelemetrySink) {
        let (Some(inner), Some(shard_inner)) = (&self.inner, &shard.inner) else {
            return;
        };
        if Arc::ptr_eq(inner, shard_inner) {
            return;
        }
        self.merge_registry(&shard_inner.registry.lock().expect("registry lock"));
    }

    /// Frames tagged but not yet resolved.
    pub fn lifecycle_inflight(&self) -> usize {
        self.inner.as_ref().map_or(0, |inner| {
            inner.lifecycle.lock().expect("lifecycle lock").inflight()
        })
    }
}

impl std::fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySink")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert_but_valid() {
        let sink = TelemetrySink::disabled();
        sink.counter("x").inc();
        sink.span_begin("p", "t", "s", 0);
        sink.lifecycle_hub_ingress(1, 0);
        assert_eq!(sink.metrics_json(), "{}\n");
        assert!(sink.trace_json().contains("traceEvents"));
        assert_eq!(sink.lifecycle_inflight(), 0);
    }

    #[test]
    fn clones_share_state() {
        let sink = TelemetrySink::enabled();
        let clone = sink.clone();
        sink.counter("shared").add(3);
        assert_eq!(clone.counter("shared").get(), 3);
    }
}
