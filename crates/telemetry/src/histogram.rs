//! A deterministic log-linear histogram (HDR-style).
//!
//! Values are bucketed with 4 bits of sub-bucket precision: every
//! power-of-two range `[2^e, 2^(e+1))` is split into 16 linear
//! sub-buckets, so the relative quantization error is bounded by 1/16
//! (~6.25 %) at any magnitude, while values below 16 are exact. Bucket
//! boundaries are pure integer arithmetic on the value — no floating
//! point, no allocation-order dependence — so two histograms fed the
//! same multiset of values are bit-identical regardless of insertion
//! order, and [`merge`](LogLinearHistogram::merge) is associative and
//! commutative (the property test in `tests/prop_histogram.rs` drives
//! all three claims).

/// Bits of linear sub-bucket precision per power-of-two range.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power-of-two range (and the exact-value range).
const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count: 16 exact buckets for values `< 16`, then 16
/// sub-buckets for each exponent 4..=63.
pub const NUM_BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// Index of the bucket recording `value`.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB {
        value as usize
    } else {
        let e = 63 - value.leading_zeros() as u64;
        let sub = (value >> (e - SUB_BITS as u64)) & (SUB - 1);
        ((e - (SUB_BITS as u64 - 1)) * SUB + sub) as usize
    }
}

/// Smallest value recorded by bucket `index` (the bucket covers
/// `[lower_bound(i), lower_bound(i + 1))`).
pub fn bucket_lower_bound(index: usize) -> u64 {
    let i = index as u64;
    if i < SUB {
        i
    } else {
        let e = i / SUB + (SUB_BITS as u64 - 1);
        let sub = i % SUB;
        (SUB + sub) << (e - SUB_BITS as u64)
    }
}

/// A point-in-time summary of a histogram, in whatever unit was recorded
/// (the telemetry plane records nanoseconds of sim time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Saturating sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value, exact (0 when empty).
    pub max: u64,
    /// Median estimate (bucket lower bound).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

/// The histogram itself. See the module docs for the bucketing scheme.
#[derive(Clone, PartialEq, Eq)]
pub struct LogLinearHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        LogLinearHistogram::new()
    }
}

impl LogLinearHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LogLinearHistogram {
        LogLinearHistogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value (exact; 0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds `other` into `self`. Associative and commutative: merging a
    /// set of histograms yields the same result in any grouping/order.
    pub fn merge(&mut self, other: &LogLinearHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the lower bound of the bucket
    /// holding the rank-`ceil(q · count)` value; 0 when empty. Monotone
    /// in `q` and never exceeds [`max`](LogLinearHistogram::max).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Summarizes the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

impl std::fmt::Debug for LogLinearHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogLinearHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
    }

    #[test]
    fn boundaries_bracket_their_values() {
        for v in [16u64, 17, 31, 32, 100, 1_000, 65_535, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower_bound(i) <= v, "lb({i}) > {v}");
            if i + 1 < NUM_BUCKETS {
                assert!(v < bucket_lower_bound(i + 1), "{v} >= lb({})", i + 1);
            }
        }
    }

    #[test]
    fn quantiles_are_sane() {
        let mut h = LogLinearHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        // p50 within one sub-bucket of the true median.
        assert!((448..=512).contains(&s.p50), "p50 = {}", s.p50);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        assert_eq!(
            LogLinearHistogram::new().snapshot(),
            HistogramSnapshot::default()
        );
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LogLinearHistogram::new();
        let mut b = LogLinearHistogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!((s.count, s.min, s.max), (2, 5, 500));
    }
}
