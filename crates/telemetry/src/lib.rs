//! `netco-telemetry`: the unified observability plane for the NetCo
//! reproduction.
//!
//! One crate, four pieces (DESIGN.md §13):
//!
//! - [`MetricsRegistry`] — named counters, gauges and deterministic
//!   log-linear histograms behind cheap [`Counter`]/[`Gauge`]/
//!   [`Histogram`] handles, with a canonical (sorted-name, integer-only)
//!   JSON snapshot.
//! - [`PacketLifecycle`] — a flight recorder keyed by content
//!   fingerprint that attributes latency to each NetCo pipeline stage
//!   (hub → replica → compare → verdict).
//! - [`Tracer`] — spans and instants rendered as chrome://tracing
//!   trace-event JSON, backed by a bounded [`FlightRing`].
//! - [`TelemetrySink`] — the handle a `World` carries. Disabled by
//!   default: the hot-path cost of instrumentation is then one branch on
//!   a null `Rc`.
//!
//! The crate is deliberately dependency-free (timestamps are plain `u64`
//! nanoseconds) so that every crate in the workspace, including
//! `netco-sim` at the bottom of the stack, can report into it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod lifecycle;
mod metrics;
mod ring;
mod sink;
mod trace;

pub use histogram::{
    bucket_index, bucket_lower_bound, HistogramSnapshot, LogLinearHistogram, NUM_BUCKETS,
};
pub use lifecycle::PacketLifecycle;
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use ring::FlightRing;
pub use sink::TelemetrySink;
pub use trace::{SpanPhase, TraceEvent, Tracer, DEFAULT_TRACE_CAPACITY};
