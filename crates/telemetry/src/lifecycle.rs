//! The packet-lifecycle flight recorder.
//!
//! Frames are tagged at hub ingress with their content fingerprint
//! (`netco_core::fp128`, the same key the compare uses to pair replica
//! copies) and per-stage timestamps are recorded as the frame moves
//! through the NetCo pipeline:
//!
//! ```text
//! hub ingress → replica egress → compare observe → verdict (release/drop)
//! ```
//!
//! Each stage transition feeds a latency histogram, and the verdict
//! closes the flight and feeds the end-to-end histogram. Stage hits are
//! first-occurrence-wins: a frame traverses two replicas and is observed
//! twice at the compare, but only the first copy's timing is recorded,
//! which mirrors how the compare's release decision works.
//!
//! The in-flight map is keyed by fingerprint and is never iterated, so
//! hash-map ordering cannot leak into any output.

use std::collections::HashMap;

use crate::metrics::{Counter, Histogram, MetricsRegistry};

/// Per-stage timestamps of one tagged frame (nanoseconds of sim time).
#[derive(Debug, Clone, Copy)]
struct Flight {
    hub_ns: u64,
    replica_ns: Option<u64>,
    observe_ns: Option<u64>,
}

/// Records per-stage packet timings into lifecycle histograms.
pub struct PacketLifecycle {
    inflight: HashMap<u128, Flight>,
    tagged: Counter,
    released: Counter,
    untracked: Counter,
    hub_to_replica: Histogram,
    replica_to_compare: Histogram,
    compare_to_verdict: Histogram,
    end_to_end: Histogram,
}

impl PacketLifecycle {
    /// Creates the recorder, registering its histograms and counters
    /// under the canonical `lifecycle.*` names.
    pub fn new(registry: &mut MetricsRegistry) -> PacketLifecycle {
        PacketLifecycle {
            inflight: HashMap::new(),
            tagged: registry.counter("lifecycle.tagged"),
            released: registry.counter("lifecycle.released"),
            untracked: registry.counter("lifecycle.untracked_verdicts"),
            hub_to_replica: registry.histogram("lifecycle.hub_to_replica_ns"),
            replica_to_compare: registry.histogram("lifecycle.replica_to_compare_ns"),
            compare_to_verdict: registry.histogram("lifecycle.compare_to_verdict_ns"),
            end_to_end: registry.histogram("lifecycle.end_to_end_ns"),
        }
    }

    /// Tags a frame entering the guard hub. First tag wins; re-tagging an
    /// in-flight fingerprint is ignored.
    pub fn hub_ingress(&mut self, key: u128, ts_ns: u64) {
        if self.inflight.contains_key(&key) {
            return;
        }
        self.inflight.insert(
            key,
            Flight {
                hub_ns: ts_ns,
                replica_ns: None,
                observe_ns: None,
            },
        );
        self.tagged.inc();
    }

    /// Records the frame leaving the hub toward a replica.
    pub fn replica_egress(&mut self, key: u128, ts_ns: u64) {
        if let Some(flight) = self.inflight.get_mut(&key) {
            if flight.replica_ns.is_none() {
                flight.replica_ns = Some(ts_ns);
                self.hub_to_replica
                    .record(ts_ns.saturating_sub(flight.hub_ns));
            }
        }
    }

    /// Records the compare observing a replica copy of the frame.
    pub fn observe(&mut self, key: u128, ts_ns: u64) {
        if let Some(flight) = self.inflight.get_mut(&key) {
            if flight.observe_ns.is_none() {
                flight.observe_ns = Some(ts_ns);
                let from = flight.replica_ns.unwrap_or(flight.hub_ns);
                self.replica_to_compare.record(ts_ns.saturating_sub(from));
            }
        }
    }

    /// Closes a flight with a release verdict.
    pub fn release(&mut self, key: u128, ts_ns: u64) {
        match self.inflight.remove(&key) {
            Some(flight) => {
                if let Some(observed) = flight.observe_ns {
                    self.compare_to_verdict
                        .record(ts_ns.saturating_sub(observed));
                }
                self.end_to_end.record(ts_ns.saturating_sub(flight.hub_ns));
                self.released.inc();
            }
            None => self.untracked.inc(),
        }
    }

    /// Closes a flight with a drop verdict; the drop is counted under
    /// `lifecycle.dropped.<reason>`.
    pub fn drop_frame(
        &mut self,
        registry: &mut MetricsRegistry,
        key: u128,
        ts_ns: u64,
        reason: &str,
    ) {
        registry
            .counter(&format!("lifecycle.dropped.{reason}"))
            .inc();
        match self.inflight.remove(&key) {
            Some(flight) => {
                if let Some(observed) = flight.observe_ns {
                    self.compare_to_verdict
                        .record(ts_ns.saturating_sub(observed));
                }
                self.end_to_end.record(ts_ns.saturating_sub(flight.hub_ns));
            }
            None => self.untracked.inc(),
        }
    }

    /// Frames tagged but not yet resolved to a verdict.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_records_every_stage() {
        let mut reg = MetricsRegistry::new();
        let mut lc = PacketLifecycle::new(&mut reg);
        lc.hub_ingress(42, 100);
        lc.replica_egress(42, 150);
        lc.observe(42, 400);
        lc.observe(42, 450); // second replica copy: ignored
        lc.release(42, 500);
        assert_eq!(lc.inflight(), 0);
        assert_eq!(reg.counter("lifecycle.tagged").get(), 1);
        assert_eq!(reg.counter("lifecycle.released").get(), 1);
        let h2r = reg.histogram("lifecycle.hub_to_replica_ns").snapshot();
        assert_eq!((h2r.count, h2r.max), (1, 50));
        let r2c = reg.histogram("lifecycle.replica_to_compare_ns").snapshot();
        assert_eq!((r2c.count, r2c.max), (1, 250));
        let c2v = reg.histogram("lifecycle.compare_to_verdict_ns").snapshot();
        assert_eq!((c2v.count, c2v.max), (1, 100));
        let e2e = reg.histogram("lifecycle.end_to_end_ns").snapshot();
        assert_eq!((e2e.count, e2e.max), (1, 400));
    }

    #[test]
    fn drops_are_counted_by_reason() {
        let mut reg = MetricsRegistry::new();
        let mut lc = PacketLifecycle::new(&mut reg);
        lc.hub_ingress(7, 0);
        lc.observe(7, 10);
        lc.drop_frame(&mut reg, 7, 90, "hold_timeout");
        assert_eq!(reg.counter("lifecycle.dropped.hold_timeout").get(), 1);
        assert_eq!(reg.histogram("lifecycle.end_to_end_ns").snapshot().count, 1);
        // A verdict for an untagged frame is counted, not invented.
        lc.release(999, 100);
        assert_eq!(reg.counter("lifecycle.untracked_verdicts").get(), 1);
    }
}
