//! A span tracer that renders chrome://tracing trace-event JSON.
//!
//! Devices map to trace "processes" and per-device tracks (a compare
//! lane, a link direction) to "threads". Both are interned to small
//! integer ids in first-use order, which is deterministic because the
//! simulation itself is: the same seed produces the same event order and
//! therefore the same id assignment, byte for byte.
//!
//! Timestamps are simulation nanoseconds rendered as microseconds with a
//! fixed three-decimal suffix (`"{µs}.{ns:03}"`), printed from integer
//! arithmetic only — no floating point, no wall clock.

use crate::metrics::escape_json;
use crate::ring::FlightRing;

/// Default bound on the in-memory trace ring.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// The chrome trace-event phase of one recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// Span open (`"B"`).
    Begin,
    /// Span close (`"E"`).
    End,
    /// Point event (`"i"`, thread-scoped).
    Instant,
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event phase.
    pub phase: SpanPhase,
    /// Interned process (device) id.
    pub pid: u32,
    /// Interned track id within the process.
    pub tid: u32,
    /// Span or event name.
    pub name: String,
    /// Simulation timestamp in nanoseconds.
    pub ts_ns: u64,
}

/// Records spans and instants and renders them for chrome://tracing.
pub struct Tracer {
    /// Interned process names; pid = index + 1.
    processes: Vec<String>,
    /// Interned `(pid, track name)` pairs; tid = index + 1.
    tracks: Vec<(u32, String)>,
    events: FlightRing<TraceEvent>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    /// A tracer whose flight ring retains at most `capacity` events.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            processes: Vec::new(),
            tracks: Vec::new(),
            events: FlightRing::new(capacity),
        }
    }

    fn pid(&mut self, process: &str) -> u32 {
        if let Some(i) = self.processes.iter().position(|p| p == process) {
            return i as u32 + 1;
        }
        self.processes.push(process.to_string());
        self.processes.len() as u32
    }

    fn tid(&mut self, pid: u32, track: &str) -> u32 {
        if let Some(i) = self
            .tracks
            .iter()
            .position(|(p, t)| *p == pid && t == track)
        {
            return i as u32 + 1;
        }
        self.tracks.push((pid, track.to_string()));
        self.tracks.len() as u32
    }

    fn record(&mut self, phase: SpanPhase, process: &str, track: &str, name: &str, ts_ns: u64) {
        let pid = self.pid(process);
        let tid = self.tid(pid, track);
        self.events.push(TraceEvent {
            phase,
            pid,
            tid,
            name: name.to_string(),
            ts_ns,
        });
    }

    /// Opens a span on `process`/`track`.
    pub fn span_begin(&mut self, process: &str, track: &str, name: &str, ts_ns: u64) {
        self.record(SpanPhase::Begin, process, track, name, ts_ns);
    }

    /// Closes the most recent open span on `process`/`track`.
    pub fn span_end(&mut self, process: &str, track: &str, name: &str, ts_ns: u64) {
        self.record(SpanPhase::End, process, track, name, ts_ns);
    }

    /// Records a point event on `process`/`track`.
    pub fn instant(&mut self, process: &str, track: &str, name: &str, ts_ns: u64) {
        self.record(SpanPhase::Instant, process, track, name, ts_ns);
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// How many events the bounded ring had to evict.
    pub fn dropped(&self) -> u64 {
        self.events.dropped()
    }

    /// Renders the chrome://tracing trace-event JSON document: metadata
    /// naming every process and track, then the retained events in
    /// recording order.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\": [\n");
        let mut first = true;
        let mut emit = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("  ");
            out.push_str(&line);
        };
        for (i, process) in self.processes.iter().enumerate() {
            emit(
                format!(
                    "{{\"ph\": \"M\", \"pid\": {}, \"tid\": 0, \"name\": \"process_name\", \
                     \"args\": {{\"name\": \"{}\"}}}}",
                    i + 1,
                    escape_json(process)
                ),
                &mut out,
            );
        }
        for (i, (pid, track)) in self.tracks.iter().enumerate() {
            emit(
                format!(
                    "{{\"ph\": \"M\", \"pid\": {}, \"tid\": {}, \"name\": \"thread_name\", \
                     \"args\": {{\"name\": \"{}\"}}}}",
                    pid,
                    i + 1,
                    escape_json(track)
                ),
                &mut out,
            );
        }
        for event in self.events.iter() {
            let ts = format!("{}.{:03}", event.ts_ns / 1_000, event.ts_ns % 1_000);
            let line = match event.phase {
                SpanPhase::Begin | SpanPhase::End => {
                    let ph = if event.phase == SpanPhase::Begin {
                        "B"
                    } else {
                        "E"
                    };
                    format!(
                        "{{\"ph\": \"{}\", \"pid\": {}, \"tid\": {}, \"ts\": {}, \"name\": \"{}\"}}",
                        ph,
                        event.pid,
                        event.tid,
                        ts,
                        escape_json(&event.name)
                    )
                }
                SpanPhase::Instant => format!(
                    "{{\"ph\": \"i\", \"pid\": {}, \"tid\": {}, \"ts\": {}, \"s\": \"t\", \
                     \"name\": \"{}\"}}",
                    event.pid,
                    event.tid,
                    ts,
                    escape_json(&event.name)
                ),
            };
            emit(line, &mut out);
        }
        out.push_str("\n],\n\"displayTimeUnit\": \"ms\"}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_interned_in_first_use_order() {
        let mut t = Tracer::new(16);
        t.span_begin("cmp", "lane0", "quarantine", 1_000);
        t.instant("guard", "lane0", "blocked", 2_000);
        t.span_end("cmp", "lane0", "quarantine", 3_000);
        let events: Vec<_> = t.events().collect();
        assert_eq!(events[0].pid, 1);
        assert_eq!(events[1].pid, 2);
        assert_eq!(events[2].pid, 1);
        assert_eq!(events[0].tid, events[2].tid);
        assert_ne!(events[0].tid, events[1].tid);
    }

    #[test]
    fn render_is_valid_shape_and_deterministic() {
        let mut t = Tracer::new(16);
        t.span_begin("cmp", "lane1", "degraded", 1_234_567);
        t.span_end("cmp", "lane1", "degraded", 2_000_000);
        let json = t.render_json();
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"ts\": 1234.567"));
        assert!(json.contains("\"ts\": 2000.000"));
        assert_eq!(json, t.render_json());
    }
}
