//! Named counters, gauges and histograms behind cheap shared handles.
//!
//! Handles are `Option<Arc<…>>`: a *disabled* handle is `None` and every
//! operation on it is a single branch; an *enabled* handle shares its
//! cell with the [`MetricsRegistry`], so instrumented code updates an
//! atomic cell with no lookup on the hot path. A *detached* handle owns
//! a live cell that is not (yet) in any registry — the always-on façade
//! statistics (`World::events_processed`, `CompareStats`) use detached
//! handles and are *adopted* into the registry when telemetry is
//! enabled, which is how one cell can back both the legacy accessor and
//! the registry snapshot.
//!
//! Storage is `Arc` + relaxed atomics (not `Rc` + `Cell`) so metric
//! handles — and therefore the devices that embed them — are `Send`:
//! the space-parallel world executor moves devices onto region worker
//! threads. Relaxed ordering is sufficient because cross-thread reads
//! only happen after the worker threads are joined, which establishes
//! the necessary happens-before edge.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{HistogramSnapshot, LogLinearHistogram};

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A monotonically increasing counter handle.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// An inert handle: every operation is a no-op.
    pub fn disabled() -> Counter {
        Counter(None)
    }

    /// A live handle that is not registered anywhere. It counts from
    /// zero and can later be folded into a registry with
    /// [`MetricsRegistry::adopt_counter`].
    pub fn detached() -> Counter {
        Counter(Some(Arc::new(AtomicU64::new(0))))
    }

    /// Whether operations on this handle record anything.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Shared storage for a gauge: last-set value plus high-water mark.
#[derive(Debug, Default)]
pub(crate) struct GaugeCell {
    pub(crate) value: AtomicU64,
    pub(crate) peak: AtomicU64,
}

/// A last-value gauge handle that also tracks its peak.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<GaugeCell>>);

impl Gauge {
    /// An inert handle: every operation is a no-op.
    pub fn disabled() -> Gauge {
        Gauge(None)
    }

    /// A live handle that is not registered anywhere.
    pub fn detached() -> Gauge {
        Gauge(Some(Arc::new(GaugeCell::default())))
    }

    /// Whether operations on this handle record anything.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Sets the current value, raising the peak if needed.
    #[inline]
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.value.store(value, Ordering::Relaxed);
            cell.peak.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Last-set value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.value.load(Ordering::Relaxed))
    }

    /// Largest value ever set (0 for a disabled handle).
    pub fn peak(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.peak.load(Ordering::Relaxed))
    }
}

/// A histogram handle; see [`LogLinearHistogram`] for the bucketing.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<Mutex<LogLinearHistogram>>>);

impl Histogram {
    /// An inert handle: every operation is a no-op.
    pub fn disabled() -> Histogram {
        Histogram(None)
    }

    /// A live handle that is not registered anywhere.
    pub fn detached() -> Histogram {
        Histogram(Some(Arc::new(Mutex::new(LogLinearHistogram::new()))))
    }

    /// Whether operations on this handle record anything.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(hist) = &self.0 {
            hist.lock().expect("histogram lock").record(value);
        }
    }

    /// Summary of everything recorded (zeroed for a disabled handle).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistogramSnapshot::default, |h| {
                h.lock().expect("histogram lock").snapshot()
            })
    }
}

/// Storage behind one registered metric name.
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<Mutex<LogLinearHistogram>>),
}

/// A name → metric map. Names are free-form dotted paths
/// (`"compare.cmp.received"`); serialization walks them in canonical
/// (lexicographic) order so the JSON snapshot is deterministic.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether no metric has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Gets or creates the counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn counter(&mut self, name: &str) -> Counter {
        let metric = self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))));
        match metric {
            Metric::Counter(cell) => Counter(Some(cell.clone())),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Gets or creates the gauge named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn gauge(&mut self, name: &str) -> Gauge {
        let metric = self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(GaugeCell::default())));
        match metric {
            Metric::Gauge(cell) => Gauge(Some(cell.clone())),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Gets or creates the histogram named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn histogram(&mut self, name: &str) -> Histogram {
        let metric = self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Mutex::new(LogLinearHistogram::new()))));
        match metric {
            Metric::Histogram(hist) => Histogram(Some(hist.clone())),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Registers a detached counter handle under `name`, so the cell the
    /// caller has been incrementing becomes the registry's cell. If
    /// `name` already exists the carried count is folded in and the
    /// handle is repointed at the registered cell. Idempotent: adopting
    /// an already-adopted handle is a no-op.
    pub fn adopt_counter(&mut self, name: &str, handle: &mut Counter) {
        match self.metrics.entry(name.to_string()) {
            Entry::Occupied(entry) => match entry.get() {
                Metric::Counter(cell) => {
                    if let Some(cur) = &handle.0 {
                        if Arc::ptr_eq(cur, cell) {
                            return;
                        }
                    }
                    cell.fetch_add(handle.get(), Ordering::Relaxed);
                    handle.0 = Some(cell.clone());
                }
                _ => panic!("metric `{name}` already registered with a different type"),
            },
            Entry::Vacant(entry) => {
                let cell = handle
                    .0
                    .get_or_insert_with(|| Arc::new(AtomicU64::new(0)))
                    .clone();
                entry.insert(Metric::Counter(cell));
            }
        }
    }

    /// Registers a detached gauge handle under `name`; the counterpart of
    /// [`adopt_counter`](MetricsRegistry::adopt_counter). On a name
    /// collision the handle's value/peak are folded in (peak = max).
    pub fn adopt_gauge(&mut self, name: &str, handle: &mut Gauge) {
        match self.metrics.entry(name.to_string()) {
            Entry::Occupied(entry) => match entry.get() {
                Metric::Gauge(cell) => {
                    if let Some(cur) = &handle.0 {
                        if Arc::ptr_eq(cur, cell) {
                            return;
                        }
                        cell.value
                            .store(cur.value.load(Ordering::Relaxed), Ordering::Relaxed);
                        cell.peak
                            .fetch_max(cur.peak.load(Ordering::Relaxed), Ordering::Relaxed);
                    }
                    handle.0 = Some(cell.clone());
                }
                _ => panic!("metric `{name}` already registered with a different type"),
            },
            Entry::Vacant(entry) => {
                let cell = handle.0.get_or_insert_with(Arc::default).clone();
                entry.insert(Metric::Gauge(cell));
            }
        }
    }

    /// Registers a detached histogram handle under `name`; the counterpart
    /// of [`adopt_counter`](MetricsRegistry::adopt_counter). On a name
    /// collision the handle's recorded values merge bucket-wise into the
    /// registered histogram and the handle is repointed at it. Idempotent.
    pub fn adopt_histogram(&mut self, name: &str, handle: &mut Histogram) {
        match self.metrics.entry(name.to_string()) {
            Entry::Occupied(entry) => match entry.get() {
                Metric::Histogram(cell) => {
                    if let Some(cur) = &handle.0 {
                        if Arc::ptr_eq(cur, cell) {
                            return;
                        }
                        let carried = cur.lock().expect("histogram lock");
                        cell.lock().expect("histogram lock").merge(&carried);
                    }
                    handle.0 = Some(cell.clone());
                }
                _ => panic!("metric `{name}` already registered with a different type"),
            },
            Entry::Vacant(entry) => {
                let cell = handle
                    .0
                    .get_or_insert_with(|| Arc::new(Mutex::new(LogLinearHistogram::new())))
                    .clone();
                entry.insert(Metric::Histogram(cell));
            }
        }
    }

    /// Folds another registry's contents into this one, name by name:
    /// counters add, gauges take the element-wise maximum of value and
    /// peak, histograms merge bucket-wise. Names absent here are created.
    ///
    /// The region-parallel world executor gives each region worker its
    /// own registry shard and folds the shards back in ascending region
    /// order, so the merged snapshot is a pure function of the simulation
    /// — independent of worker count and OS scheduling.
    ///
    /// # Panics
    ///
    /// If a name is registered with different metric types in the two
    /// registries.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, metric) in &other.metrics {
            match metric {
                Metric::Counter(cell) => {
                    self.counter(name).add(cell.load(Ordering::Relaxed));
                }
                Metric::Gauge(cell) => {
                    let target = self.gauge(name);
                    if let Some(t) = &target.0 {
                        t.value
                            .fetch_max(cell.value.load(Ordering::Relaxed), Ordering::Relaxed);
                        t.peak
                            .fetch_max(cell.peak.load(Ordering::Relaxed), Ordering::Relaxed);
                    }
                }
                Metric::Histogram(hist) => {
                    let target = self.histogram(name);
                    if let Some(t) = &target.0 {
                        let source = hist.lock().expect("histogram lock");
                        t.lock().expect("histogram lock").merge(&source);
                    }
                }
            }
        }
    }

    /// Renders every metric as one canonical JSON object: names in
    /// lexicographic order, integer values only, fixed field order per
    /// metric kind. Byte-identical for identical metric contents.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        for (name, metric) in &self.metrics {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(out, "  \"{}\": ", escape_json(name));
            match metric {
                Metric::Counter(cell) => {
                    let _ = write!(out, "{}", cell.load(Ordering::Relaxed));
                }
                Metric::Gauge(cell) => {
                    let _ = write!(
                        out,
                        "{{\"value\": {}, \"peak\": {}}}",
                        cell.value.load(Ordering::Relaxed),
                        cell.peak.load(Ordering::Relaxed)
                    );
                }
                Metric::Histogram(hist) => {
                    let s = hist.lock().expect("histogram lock").snapshot();
                    let _ = write!(
                        out,
                        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                         \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                        s.count, s.sum, s.min, s.max, s.p50, s.p90, s.p99
                    );
                }
            }
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::disabled();
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::disabled();
        g.set(7);
        assert_eq!((g.get(), g.peak()), (0, 0));
        let h = Histogram::disabled();
        h.record(7);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn registry_handles_share_storage() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn adopt_preserves_and_merges_counts() {
        let mut reg = MetricsRegistry::new();
        let mut detached = Counter::detached();
        detached.add(5);
        reg.adopt_counter("n", &mut detached);
        assert_eq!(reg.counter("n").get(), 5);
        detached.inc();
        assert_eq!(reg.counter("n").get(), 6);
        // Idempotent.
        reg.adopt_counter("n", &mut detached);
        assert_eq!(detached.get(), 6);
        // A second detached handle folds its count in.
        let mut other = Counter::detached();
        other.add(10);
        reg.adopt_counter("n", &mut other);
        assert_eq!(detached.get(), 16);
    }

    #[test]
    fn gauge_tracks_peak() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(9);
        g.set(3);
        assert_eq!((g.get(), g.peak()), (3, 9));
    }

    #[test]
    fn json_is_canonical() {
        let mut reg = MetricsRegistry::new();
        reg.counter("b.count").inc();
        reg.gauge("a.depth").set(2);
        let h = reg.histogram("c.lat");
        h.record(10);
        let json = reg.render_json();
        let a = json.find("a.depth").unwrap();
        let b = json.find("b.count").unwrap();
        let c = json.find("c.lat").unwrap();
        assert!(a < b && b < c, "names must serialize in sorted order");
        assert_eq!(json, reg.render_json());
    }
}
