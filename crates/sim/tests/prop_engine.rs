//! Property tests on the discrete-event kernel.

use netco_sim::{Scheduler, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, FIFO within a tick.
    #[test]
    fn pops_are_time_ordered(delays in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut s: Scheduler<usize> = Scheduler::new();
        for (i, &d) in delays.iter().enumerate() {
            s.schedule_at(SimTime::from_nanos(d), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut last_idx_at_time: Option<usize> = None;
        let mut count = 0;
        while let Some((t, idx)) = s.pop() {
            prop_assert!(t >= last_time);
            if t == last_time {
                if let Some(prev) = last_idx_at_time {
                    // Same-instant events: insertion (index) order.
                    if delays[prev] == delays[idx] {
                        prop_assert!(idx > prev);
                    }
                }
                last_idx_at_time = Some(idx);
            } else {
                last_idx_at_time = Some(idx);
            }
            last_time = t;
            count += 1;
        }
        prop_assert_eq!(count, delays.len());
    }

    /// The clock never runs backwards even with past-dated events.
    #[test]
    fn clock_is_monotonic(ops in proptest::collection::vec((0u64..1000, any::<bool>()), 1..100)) {
        let mut s: Scheduler<u32> = Scheduler::new();
        let mut prev = SimTime::ZERO;
        for (i, (d, pop)) in ops.into_iter().enumerate() {
            s.schedule_at(SimTime::from_nanos(d), i as u32);
            if pop {
                if let Some((t, _)) = s.pop() {
                    prop_assert!(t >= prev);
                    prev = t;
                }
            }
        }
    }

    /// Time arithmetic: (t + a) + b == (t + b) + a and t + a - a == t.
    #[test]
    fn duration_arithmetic_commutes(t in 0u64..1 << 40, a in 0u64..1 << 20, b in 0u64..1 << 20) {
        let t = SimTime::from_nanos(t);
        let (a, b) = (SimDuration::from_nanos(a), SimDuration::from_nanos(b));
        prop_assert_eq!((t + a) + b, (t + b) + a);
        prop_assert_eq!((t + a) - a, t);
        prop_assert_eq!((t + a) - t, a);
    }

    /// RNG determinism: identical seeds yield identical streams; `fork`
    /// preserves that.
    #[test]
    fn rng_reproducible(seed in any::<u64>(), label in any::<u64>(), n in 1usize..100) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        let mut fa = a.fork(label);
        let mut fb = b.fork(label);
        for _ in 0..n {
            prop_assert_eq!(a.next_u64(), b.next_u64());
            prop_assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }

    /// `range` stays in bounds for arbitrary non-empty ranges.
    #[test]
    fn rng_range_in_bounds(seed in any::<u64>(), lo in 0u64..1000, width in 1u64..1000, n in 1usize..50) {
        let mut rng = SimRng::new(seed);
        for _ in 0..n {
            let v = rng.range(lo, lo + width);
            prop_assert!((lo..lo + width).contains(&v));
        }
    }

    /// Jitter never leaves the configured band.
    #[test]
    fn jitter_banded(seed in any::<u64>(), base in 1u64..1_000_000, frac in 0.0f64..1.0) {
        let mut rng = SimRng::new(seed);
        let base = SimDuration::from_nanos(base);
        let j = rng.jitter(base, frac);
        let lo = base.mul_f64((1.0 - frac).max(0.0));
        let hi = base.mul_f64(1.0 + frac);
        prop_assert!(j >= lo && j <= hi, "{j} outside [{lo}, {hi}]");
    }
}
