//! The time-ordered event queue at the heart of the engine.
//!
//! [`Scheduler`] is a hierarchical timing wheel: four levels of 256 slots
//! each, covering 2^32 ns (~4.29 s) of look-ahead at 1 ns resolution, with a
//! binary-heap overflow for events beyond the horizon. Near-term events —
//! the overwhelming majority in a packet-level simulation, where delays are
//! link latencies and queue drains — insert and pop in O(1) instead of the
//! O(log n) of the previous single [`BinaryHeap`] implementation, which is
//! kept as [`baseline::HeapScheduler`] and doubles as the oracle for the
//! differential property test below.
//!
//! Determinism is the binding constraint: the wheel must pop the *exact*
//! same `(time, seq)` sequence as the heap, because downstream experiment
//! traces are compared bit-for-bit across runs. The wheel guarantees this
//! structurally:
//!
//! * slot lists only ever append, and every append source (direct insert,
//!   cascade from a higher level, heap drain) visits entries in `(at, seq)`
//!   order, so entries with equal `at` always sit in a slot in `seq` order;
//! * cascades are stable drains, preserving that relative order;
//! * level-0 slots hold exactly one 1 ns tick, so draining a slot yields a
//!   FIFO run of simultaneous events.
//!
//! # Keys and stages
//!
//! Every entry also carries a caller-supplied **key** (default 0), and
//! delivery order is `(at, key, seq)`: within one staged tick, events are
//! sorted by key first, then by schedule order. Keys exist for the
//! space-parallel executor — the `World` derives each event's key from the
//! node/link *stream* it belongs to, a value computable identically in
//! sequential and region-parallel runs, which makes same-instant delivery
//! order independent of which worker executed the neighboring region.
//!
//! Same-instant events scheduled *while a tick at that instant is being
//! drained* do not join the live tick; they re-enter the wheel and surface
//! as the next **stage** of the same timestamp (a fresh sorted tick at the
//! same `at`). Per-event [`Scheduler::pop`] and batched
//! [`Scheduler::pop_tick_until`] therefore yield byte-identical sequences,
//! and a region executor can mirror the stage boundaries deterministically.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::{SimDuration, SimTime};

/// Bits of slot index per wheel level.
const SLOT_BITS: u32 = 8;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels; events further than `2^(SLOT_BITS*(LEVELS+1))` ns
/// past the wheel base overflow into the heap.
const LEVELS: usize = 4;

struct Entry<E> {
    /// Absolute due time in nanoseconds.
    at: u64,
    /// Caller-supplied ordering key; ties broken by `seq`.
    key: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, key, seq)
        // pops first. `seq` makes simultaneous same-key events FIFO and the
        // whole run deterministic.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One wheel level: 256 append-only slot lists plus an occupancy bitmap and
/// a per-slot minimum due time (`u64::MAX` when empty) so that
/// [`Scheduler::peek_time`] never has to walk or mutate slot contents.
struct Level<E> {
    slots: Vec<Vec<Entry<E>>>,
    occupied: [u64; SLOTS / 64],
    mins: Vec<u64>,
}

impl<E> Level<E> {
    fn new() -> Self {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; SLOTS / 64],
            mins: vec![u64::MAX; SLOTS],
        }
    }

    fn push(&mut self, slot: usize, entry: Entry<E>) {
        self.occupied[slot >> 6] |= 1u64 << (slot & 63);
        if entry.at < self.mins[slot] {
            self.mins[slot] = entry.at;
        }
        self.slots[slot].push(entry);
    }

    /// Index of the first occupied slot, scanning the bitmap words.
    fn first_occupied(&self) -> Option<usize> {
        for (i, word) in self.occupied.iter().enumerate() {
            if *word != 0 {
                return Some(i * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Marks `slot` empty after its contents have been drained elsewhere.
    fn mark_drained(&mut self, slot: usize) {
        self.occupied[slot >> 6] &= !(1u64 << (slot & 63));
        self.mins[slot] = u64::MAX;
    }

    fn reset(&mut self) {
        for slot in &mut self.slots {
            slot.clear();
        }
        self.occupied = [0; SLOTS / 64];
        self.mins.iter_mut().for_each(|m| *m = u64::MAX);
    }
}

/// A drained scheduler tick: every event sharing one due instant, in `seq`
/// order. Obtained (by buffer swap, not per-event copy) from
/// [`Scheduler::pop_tick_until`]; hand the emptied buffer back to the next
/// call so its capacity is reused.
pub struct Tick<E> {
    entries: VecDeque<Entry<E>>,
}

impl<E> Tick<E> {
    /// Creates an empty tick buffer.
    pub fn new() -> Self {
        Tick {
            entries: VecDeque::new(),
        }
    }

    /// Number of events in the tick.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the tick holds no events.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes and returns the tick's events in delivery (`key`, `seq`)
    /// order.
    pub fn drain(&mut self) -> impl Iterator<Item = E> + '_ {
        self.entries.drain(..).map(|e| e.event)
    }

    /// Like [`drain`](Tick::drain), but yields each event's ordering key
    /// alongside it (the region executor records keys so cross-region
    /// observation order can be reconstructed canonically).
    pub fn drain_keyed(&mut self) -> impl Iterator<Item = (u64, E)> + '_ {
        self.entries.drain(..).map(|e| (e.key, e.event))
    }
}

impl<E> Default for Tick<E> {
    fn default() -> Self {
        Tick::new()
    }
}

/// A deterministic discrete-event scheduler.
///
/// Events are arbitrary payloads of type `E`. Popping advances the
/// simulation clock to the event's timestamp. Events scheduled for the same
/// instant are delivered in the order they were scheduled.
///
/// # Example
///
/// ```
/// use netco_sim::{Scheduler, SimDuration};
///
/// let mut s: Scheduler<u32> = Scheduler::new();
/// s.schedule_after(SimDuration::from_secs(1), 1);
/// s.schedule_after(SimDuration::from_secs(1), 2); // same instant: FIFO
/// assert_eq!(s.pop().unwrap().1, 1);
/// assert_eq!(s.pop().unwrap().1, 2);
/// assert!(s.pop().is_none());
/// ```
pub struct Scheduler<E> {
    now: u64,
    seq: u64,
    len: usize,
    /// Start of the window the wheel levels are aligned to. Invariants:
    /// 256-aligned (or 0), `wheel_base <= now`, and no pending event is due
    /// before `wheel_base`.
    wheel_base: u64,
    levels: [Level<E>; LEVELS],
    /// Overflow for events beyond the wheel horizon (same `2^32` ns block
    /// as `wheel_base`). Drained back into the wheels block by block.
    heap: BinaryHeap<Entry<E>>,
    /// The single 1 ns tick currently being drained; every entry here has
    /// `at == ready tick`, and once the first one has popped, `at == now`.
    ready: VecDeque<Entry<E>>,
    /// Reusable cascade buffer so window advances do not reallocate.
    scratch: Vec<Entry<E>>,
    /// Telemetry handles (inert by default; see [`Scheduler::attach_telemetry`]).
    tel_scheduled: netco_telemetry::Counter,
    tel_pops: netco_telemetry::Counter,
    tel_depth: netco_telemetry::Gauge,
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Scheduler {
            now: 0,
            seq: 0,
            len: 0,
            wheel_base: 0,
            levels: std::array::from_fn(|_| Level::new()),
            heap: BinaryHeap::new(),
            ready: VecDeque::new(),
            scratch: Vec::new(),
            tel_scheduled: netco_telemetry::Counter::disabled(),
            tel_pops: netco_telemetry::Counter::disabled(),
            tel_depth: netco_telemetry::Gauge::disabled(),
        }
    }

    /// Wires this scheduler into a telemetry sink: every schedule and pop
    /// is counted under `sim.sched.*` and the pending-event depth (the
    /// "event budget" still outstanding) is tracked as a gauge with a
    /// high-water mark. With a disabled sink the handles stay inert and
    /// the hot-path cost is one branch per operation.
    pub fn attach_telemetry(&mut self, sink: &netco_telemetry::TelemetrySink) {
        self.tel_scheduled = sink.counter("sim.sched.scheduled");
        self.tel_pops = sink.counter("sim.sched.pops");
        self.tel_depth = sink.gauge("sim.sched.depth");
    }

    /// The current simulated time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// Events scheduled in the past are delivered "now" (clock never runs
    /// backwards); this is deliberate so that zero-latency feedback loops
    /// cannot rewind time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.schedule_at_keyed(at, 0, event);
    }

    /// Schedules `event` at `at` with an explicit ordering key: delivery is
    /// in `(at, key, seq)` order. Same-instant arrivals while a tick at
    /// `at` is being drained become the next *stage* of that timestamp
    /// (they re-enter the wheel rather than joining the live tick), so the
    /// staged grouping is identical whether ticks are drained per event or
    /// in batch.
    pub fn schedule_at_keyed(&mut self, at: SimTime, key: u64, event: E) {
        let at = at.as_nanos().max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        self.tel_scheduled.inc();
        self.tel_depth.set(self.len as u64);
        self.insert(Entry {
            at,
            key,
            seq,
            event,
        });
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(SimTime::from_nanos(self.now).saturating_add(delay), event);
    }

    /// Schedules `event` after `delay` with an explicit ordering key.
    pub fn schedule_after_keyed(&mut self, delay: SimDuration, key: u64, event: E) {
        self.schedule_at_keyed(
            SimTime::from_nanos(self.now).saturating_add(delay),
            key,
            event,
        );
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_keyed().map(|(t, _, e)| (t, e))
    }

    /// Like [`pop`](Scheduler::pop), but also returns the event's ordering
    /// key (callers that stamp observations with the key of the event
    /// being dispatched need it; everyone else uses `pop`).
    pub fn pop_keyed(&mut self) -> Option<(SimTime, u64, E)> {
        if self.ready.is_empty() && !self.refill_ready() {
            return None;
        }
        let entry = self.ready.pop_front().expect("refill_ready staged a tick");
        debug_assert!(entry.at >= self.now, "time went backwards");
        self.now = entry.at;
        self.len -= 1;
        self.tel_pops.inc();
        Some((SimTime::from_nanos(entry.at), entry.key, entry.event))
    }

    /// Removes the entire next due tick — every pending event sharing the
    /// earliest `(time)` instant — appending the events to `out` in `seq`
    /// order and advancing the clock to that instant. Returns the number
    /// of events drained (0 when nothing is pending).
    ///
    /// This is the batched hot path: one wheel refill (bitmap scan,
    /// cascade, heap pull) is amortized over the whole slot instead of
    /// being paid per [`pop`](Scheduler::pop). The delivery order is
    /// bit-identical to repeated `pop` calls: both yield events in global
    /// `(time, seq)` order. Events scheduled *between* batches for the
    /// instant just drained re-enter the wheel and surface as the next
    /// tick — still at the same timestamp, still in `seq` order — exactly
    /// where per-event popping would have delivered them.
    pub fn pop_batch(&mut self, out: &mut Vec<(SimTime, E)>) -> usize {
        self.pop_batch_until(SimTime::MAX, out)
    }

    /// Like [`pop_batch`](Scheduler::pop_batch), but refuses to start a
    /// tick due after `deadline` (the tick stays pending and the clock
    /// does not move). Returns 0 when nothing is due at or before
    /// `deadline`.
    pub fn pop_batch_until(&mut self, deadline: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        let Some(at) = self.stage_tick_until(deadline) else {
            return 0;
        };
        let n = self.ready.len();
        let t = SimTime::from_nanos(at);
        out.reserve(n);
        for entry in self.ready.drain(..) {
            debug_assert_eq!(entry.at, at, "ready holds exactly one tick");
            out.push((t, entry.event));
        }
        self.len -= n;
        self.tel_pops.add(n as u64);
        n
    }

    /// Like [`pop_batch_until`](Scheduler::pop_batch_until), but hands the
    /// drained tick over by buffer swap instead of copying every entry into
    /// a caller `Vec`: `tick` (which must be empty) swaps places with the
    /// internal ready queue. One event traverses the scheduler with exactly
    /// one move — wheel slot to ready — instead of two. Delivery order is
    /// identical to [`pop`](Scheduler::pop) / `pop_batch_until`.
    pub fn pop_tick_until(&mut self, deadline: SimTime, tick: &mut Tick<E>) -> usize {
        debug_assert!(tick.entries.is_empty(), "tick buffer handed back dirty");
        let Some(_) = self.stage_tick_until(deadline) else {
            return 0;
        };
        std::mem::swap(&mut self.ready, &mut tick.entries);
        let n = tick.entries.len();
        self.len -= n;
        self.tel_pops.add(n as u64);
        n
    }

    /// Stages the next tick due at or before `deadline` into `ready` and
    /// advances the clock to it. Returns the tick's timestamp, or `None`
    /// when nothing is due by `deadline`.
    fn stage_tick_until(&mut self, deadline: SimTime) -> Option<u64> {
        if self.ready.is_empty() {
            // Decide from the wheel before staging anything: a tick past
            // the deadline must stay unstaged (the clock must not move and
            // `peek_time` must keep seeing it in the wheel).
            match self.peek_time() {
                Some(t) if t <= deadline => {
                    let staged = self.refill_ready();
                    debug_assert!(staged, "peek_time saw a pending event");
                }
                _ => return None,
            }
        }
        let at = self.ready.front().expect("tick is staged").at;
        if at > deadline.as_nanos() {
            // Only reachable when a tick was already part-drained by
            // per-event `pop` calls; never abandon it mid-tick.
            return None;
        }
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        Some(at)
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(front) = self.ready.front() {
            return Some(SimTime::from_nanos(front.at));
        }
        // Wheel levels cover strictly increasing, disjoint time windows, so
        // the first occupied slot of the lowest occupied level holds the
        // minimum; the heap only holds events past every wheel window.
        for level in &self.levels {
            if let Some(slot) = level.first_occupied() {
                return Some(SimTime::from_nanos(level.mins[slot]));
            }
        }
        self.heap.peek().map(|e| SimTime::from_nanos(e.at))
    }

    /// Discards all pending events (the clock is unaffected).
    pub fn clear(&mut self) {
        for level in &mut self.levels {
            level.reset();
        }
        self.heap.clear();
        self.ready.clear();
        self.len = 0;
        // Keep the base 256-aligned and <= now for future inserts.
        self.wheel_base = self.now & !(SLOTS as u64 - 1);
    }

    /// Routes an entry to the shallowest level whose window contains it:
    /// level `l` iff `at` and `wheel_base` agree on all bits above the
    /// level's slot index, else the overflow heap.
    fn insert(&mut self, entry: Entry<E>) {
        debug_assert!(entry.at >= self.wheel_base);
        let at = entry.at;
        for (lvl, level) in self.levels.iter_mut().enumerate() {
            let window = SLOT_BITS * (lvl as u32 + 1);
            if (at >> window) == (self.wheel_base >> window) {
                let slot = ((at >> (SLOT_BITS * lvl as u32)) & (SLOTS as u64 - 1)) as usize;
                level.push(slot, entry);
                return;
            }
        }
        self.heap.push(entry);
    }

    /// Sorts the staged tick into `(key, seq)` delivery order. Slot lists
    /// append in `seq` order, so with all-default keys the tick is already
    /// sorted and this is a single scan with no allocation.
    fn sort_ready(&mut self) {
        let entries = self.ready.make_contiguous();
        if entries
            .windows(2)
            .all(|w| (w[0].key, w[0].seq) <= (w[1].key, w[1].seq))
        {
            return;
        }
        entries.sort_by_key(|e| (e.key, e.seq));
    }

    /// Removes every pending event in `(at, key, seq)` delivery order
    /// without advancing the clock. The space-parallel executor uses this
    /// to partition a world's pending events into per-region schedulers and
    /// to fold region leftovers back in afterwards.
    pub fn drain_all_ordered(&mut self) -> Vec<(SimTime, u64, E)> {
        let mut out = Vec::with_capacity(self.len);
        loop {
            if self.ready.is_empty() && !self.refill_ready() {
                break;
            }
            while let Some(entry) = self.ready.pop_front() {
                out.push((SimTime::from_nanos(entry.at), entry.key, entry.event));
            }
        }
        self.len = 0;
        // Draining cascaded the wheel forward; re-anchor the now-empty
        // wheel so future inserts at `now` stay in range.
        self.wheel_base = self.now & !(SLOTS as u64 - 1);
        self.tel_depth.set(0);
        out
    }

    /// Stages the next due tick into `ready`, cascading higher wheel levels
    /// down and pulling the heap's next block in as needed. Returns `false`
    /// when nothing is pending.
    fn refill_ready(&mut self) -> bool {
        debug_assert!(self.ready.is_empty());
        loop {
            // Fast path: a level-0 slot is a single tick; drain it whole.
            if let Some(slot) = self.levels[0].first_occupied() {
                let level = &mut self.levels[0];
                self.ready.extend(level.slots[slot].drain(..));
                level.mark_drained(slot);
                self.sort_ready();
                return true;
            }
            // Cascade the first occupied slot of the shallowest non-empty
            // level: advance the base to that slot's absolute window start
            // and redistribute its entries one level down (stable, so
            // equal-time entries keep their seq order).
            if let Some((lvl, slot)) =
                (1..LEVELS).find_map(|l| self.levels[l].first_occupied().map(|s| (l, s)))
            {
                let shift = SLOT_BITS * lvl as u32;
                let above = shift + SLOT_BITS;
                let slot_start = (self.wheel_base >> above << above) | ((slot as u64) << shift);
                debug_assert!(slot_start > self.wheel_base);
                self.wheel_base = slot_start;
                let mut moved = std::mem::take(&mut self.scratch);
                #[allow(clippy::extend_with_drain)] // `append` pessimizes codegen here
                moved.extend(self.levels[lvl].slots[slot].drain(..));
                self.levels[lvl].mark_drained(slot);
                for entry in moved.drain(..) {
                    self.insert(entry);
                }
                self.scratch = moved;
                continue;
            }
            // Wheels empty: pull the heap's next 2^32 ns block into the
            // wheels. Heap pops are (at, seq)-ordered, so equal-time
            // entries land in their slot in seq order.
            if let Some(head) = self.heap.peek() {
                let block_base = self.wheel_base.max(head.at & !(SLOTS as u64 - 1));
                self.wheel_base = block_base;
                let horizon = SLOT_BITS * LEVELS as u32;
                while self
                    .heap
                    .peek()
                    .is_some_and(|e| (e.at >> horizon) == (block_base >> horizon))
                {
                    let entry = self.heap.pop().expect("peeked entry");
                    self.insert(entry);
                }
                continue;
            }
            return false;
        }
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::new()
    }
}

impl<E> std::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &SimTime::from_nanos(self.now))
            .field("pending", &self.len)
            .finish()
    }
}

/// The previous `BinaryHeap`-backed scheduler, kept verbatim as the
/// reference implementation: the differential property test asserts the
/// timing wheel pops the identical `(time, seq)` sequence, and
/// `benches/micro.rs` measures the wheel against it.
#[doc(hidden)]
pub mod baseline {
    use std::collections::BinaryHeap;

    use crate::{SimDuration, SimTime};

    use super::Entry;

    /// Single-`BinaryHeap` scheduler with the same API and semantics as
    /// [`Scheduler`](super::Scheduler).
    pub struct HeapScheduler<E> {
        now: SimTime,
        seq: u64,
        heap: BinaryHeap<Entry<E>>,
    }

    impl<E> Default for HeapScheduler<E> {
        fn default() -> Self {
            HeapScheduler::new()
        }
    }

    impl<E> HeapScheduler<E> {
        /// Creates an empty scheduler with the clock at [`SimTime::ZERO`].
        pub fn new() -> Self {
            HeapScheduler {
                now: SimTime::ZERO,
                seq: 0,
                heap: BinaryHeap::new(),
            }
        }

        /// The current simulated time.
        pub fn now(&self) -> SimTime {
            self.now
        }

        /// Number of pending events.
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// `true` when no events are pending.
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }

        /// Schedules `event` at the absolute instant `at` (past clamps to now).
        pub fn schedule_at(&mut self, at: SimTime, event: E) {
            let at = at.max(self.now);
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Entry {
                at: at.as_nanos(),
                key: 0,
                seq,
                event,
            });
        }

        /// Schedules `event` after `delay` from the current time.
        pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
            self.schedule_at(self.now.saturating_add(delay), event);
        }

        /// Removes and returns the earliest event, advancing the clock.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            let entry = self.heap.pop()?;
            let at = SimTime::from_nanos(entry.at);
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            Some((at, entry.event))
        }

        /// Timestamp of the earliest pending event, if any.
        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|e| SimTime::from_nanos(e.at))
        }

        /// Discards all pending events (the clock is unaffected).
        pub fn clear(&mut self) {
            self.heap.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::baseline::HeapScheduler;
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(30), "c");
        s.schedule_at(SimTime::from_nanos(10), "a");
        s.schedule_at(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..50 {
            s.schedule_at(SimTime::from_nanos(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_after(SimDuration::from_micros(3), ());
        assert_eq!(s.now(), SimTime::ZERO);
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(3_000));
        assert_eq!(s.now(), t);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(100), 1);
        s.pop();
        s.schedule_at(SimTime::from_nanos(50), 2); // in the past
        let (t, e) = s.pop().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t, SimTime::from_nanos(100));
    }

    #[test]
    fn relative_scheduling_stacks() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule_after(SimDuration::from_nanos(10), 1);
        s.pop();
        s.schedule_after(SimDuration::from_nanos(10), 2);
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(20));
    }

    #[test]
    fn len_empty_clear() {
        let mut s: Scheduler<u8> = Scheduler::new();
        assert!(s.is_empty());
        s.schedule_after(SimDuration::ZERO, 1);
        s.schedule_after(SimDuration::ZERO, 2);
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
        assert!(s.pop().is_none());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(7), 1);
        assert_eq!(s.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(s.now(), SimTime::ZERO);
    }

    #[test]
    fn interleaved_schedule_pop_is_deterministic() {
        // Two identical runs produce identical traces.
        fn run() -> Vec<(u64, u32)> {
            let mut s: Scheduler<u32> = Scheduler::new();
            let mut out = Vec::new();
            s.schedule_at(SimTime::from_nanos(1), 0);
            while let Some((t, e)) = s.pop() {
                out.push((t.as_nanos(), e));
                if e < 20 {
                    s.schedule_after(SimDuration::from_nanos(2), e + 1);
                    s.schedule_after(SimDuration::from_nanos(2), e + 100);
                }
            }
            out
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn far_future_events_cross_the_wheel_horizon() {
        // Beyond 2^32 ns the wheel overflows into the heap; order must
        // still be exact when those events are drained back in.
        let mut s: Scheduler<u32> = Scheduler::new();
        let horizon = 1u64 << 32;
        s.schedule_at(SimTime::from_nanos(3 * horizon + 5), 3);
        s.schedule_at(SimTime::from_nanos(horizon + 7), 1);
        s.schedule_at(SimTime::from_nanos(12), 0);
        s.schedule_at(SimTime::from_nanos(2 * horizon), 2);
        s.schedule_at(SimTime::from_nanos(2 * horizon), 20); // same tick, FIFO
        let order: Vec<_> = std::iter::from_fn(|| s.pop())
            .map(|(t, e)| (t.as_nanos(), e))
            .collect();
        assert_eq!(
            order,
            vec![
                (12, 0),
                (horizon + 7, 1),
                (2 * horizon, 2),
                (2 * horizon, 20),
                (3 * horizon + 5, 3),
            ]
        );
    }

    #[test]
    fn same_instant_schedule_while_draining_tick() {
        // Scheduling at `now` while other events at `now` are still queued
        // must deliver FIFO at the same timestamp.
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(10), 1);
        s.schedule_at(SimTime::from_nanos(10), 2);
        let (t, e) = s.pop().unwrap();
        assert_eq!((t.as_nanos(), e), (10, 1));
        s.schedule_at(SimTime::from_nanos(10), 3); // joins the live tick
        s.schedule_at(SimTime::from_nanos(5), 4); // past: clamps to the live tick
        assert_eq!(s.peek_time(), Some(SimTime::from_nanos(10)));
        let rest: Vec<_> = std::iter::from_fn(|| s.pop())
            .map(|(t, e)| (t.as_nanos(), e))
            .collect();
        assert_eq!(rest, vec![(10, 2), (10, 3), (10, 4)]);
    }

    #[test]
    fn pop_batch_drains_whole_tick() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..10 {
            s.schedule_at(SimTime::from_nanos(5), i);
        }
        s.schedule_at(SimTime::from_nanos(6), 99);
        let mut out = Vec::new();
        assert_eq!(s.pop_batch(&mut out), 10);
        assert_eq!(s.now(), SimTime::from_nanos(5));
        assert_eq!(s.len(), 1);
        let events: Vec<u32> = out
            .iter()
            .map(|&(t, e)| {
                assert_eq!(t, SimTime::from_nanos(5));
                e
            })
            .collect();
        assert_eq!(events, (0..10).collect::<Vec<_>>());
        out.clear();
        assert_eq!(s.pop_batch(&mut out), 1);
        assert_eq!(out[0], (SimTime::from_nanos(6), 99));
        assert_eq!(s.pop_batch(&mut out), 0);
    }

    #[test]
    fn pop_batch_until_respects_deadline() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(10), 1);
        s.schedule_at(SimTime::from_nanos(20), 2);
        let mut out = Vec::new();
        assert_eq!(s.pop_batch_until(SimTime::from_nanos(5), &mut out), 0);
        assert_eq!(s.now(), SimTime::ZERO, "deadline miss leaves the clock");
        assert_eq!(s.peek_time(), Some(SimTime::from_nanos(10)));
        assert_eq!(s.pop_batch_until(SimTime::from_nanos(10), &mut out), 1);
        assert_eq!(s.now(), SimTime::from_nanos(10));
        // The staged-but-refused tick still pops normally.
        assert_eq!(s.pop(), Some((SimTime::from_nanos(20), 2)));
    }

    #[test]
    fn same_instant_schedule_between_batches_lands_next_batch() {
        // Between-batch arrivals for the instant just drained come out in
        // the next batch at the *same timestamp* — global (time, seq)
        // order is preserved, which is what makes batched dispatch
        // bit-identical to per-event dispatch.
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(10), 1);
        s.schedule_at(SimTime::from_nanos(10), 2);
        let mut out = Vec::new();
        assert_eq!(s.pop_batch(&mut out), 2);
        s.schedule_at(SimTime::from_nanos(10), 3); // "handler" reschedule
        s.schedule_at(SimTime::from_nanos(5), 4); // past: clamps to now
        out.clear();
        assert_eq!(s.pop_batch(&mut out), 2);
        assert_eq!(
            out,
            vec![(SimTime::from_nanos(10), 3), (SimTime::from_nanos(10), 4)]
        );
    }

    #[test]
    fn pop_batch_finishes_partially_popped_tick() {
        // Mixing pop() and pop_batch(): the batch completes the tick the
        // per-event pop started.
        let mut s: Scheduler<u8> = Scheduler::new();
        for i in 0..4 {
            s.schedule_at(SimTime::from_nanos(7), i);
        }
        assert_eq!(s.pop(), Some((SimTime::from_nanos(7), 0)));
        let mut out = Vec::new();
        assert_eq!(s.pop_batch(&mut out), 3);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn keyed_order_beats_schedule_order_within_a_tick() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_at_keyed(SimTime::from_nanos(10), 7, "late-key-first-scheduled");
        s.schedule_at_keyed(SimTime::from_nanos(10), 2, "low-key");
        s.schedule_at_keyed(SimTime::from_nanos(10), 7, "late-key-second-scheduled");
        s.schedule_at_keyed(SimTime::from_nanos(5), 9, "earlier-time-wins");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec![
                "earlier-time-wins",
                "low-key",
                "late-key-first-scheduled",
                "late-key-second-scheduled",
            ]
        );
    }

    #[test]
    fn same_instant_arrivals_form_next_stage_sorted_by_key() {
        // An arrival at `now` while the tick at `now` drains surfaces as a
        // fresh stage of the same timestamp — sorted by key, after every
        // event of the current stage, identically for pop and batch.
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule_at_keyed(SimTime::from_nanos(10), 5, 1);
        s.schedule_at_keyed(SimTime::from_nanos(10), 1, 2);
        let (t, e) = s.pop().unwrap();
        assert_eq!((t.as_nanos(), e), (10, 2), "key 1 before key 5");
        s.schedule_at_keyed(SimTime::from_nanos(10), 9, 3);
        s.schedule_at_keyed(SimTime::from_nanos(10), 0, 4);
        let rest: Vec<_> = std::iter::from_fn(|| s.pop())
            .map(|(t, e)| (t.as_nanos(), e))
            .collect();
        // Stage 1 finishes (key 5), then stage 2 sorted by key (0 then 9).
        assert_eq!(rest, vec![(10, 1), (10, 4), (10, 3)]);
    }

    #[test]
    fn drain_all_ordered_yields_delivery_order_and_leaves_clock() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(100), 0);
        s.pop();
        let horizon = 1u64 << 33;
        s.schedule_at_keyed(SimTime::from_nanos(horizon), 0, 5);
        s.schedule_at_keyed(SimTime::from_nanos(200), 3, 1);
        s.schedule_at_keyed(SimTime::from_nanos(200), 1, 2);
        s.schedule_at_keyed(SimTime::from_nanos(150), 9, 3);
        let drained: Vec<_> = s
            .drain_all_ordered()
            .into_iter()
            .map(|(t, k, e)| (t.as_nanos(), k, e))
            .collect();
        assert_eq!(
            drained,
            vec![(150, 9, 3), (200, 1, 2), (200, 3, 1), (horizon, 0, 5)]
        );
        assert!(s.is_empty());
        assert_eq!(
            s.now(),
            SimTime::from_nanos(100),
            "drain must not move time"
        );
        // The re-anchored wheel keeps working.
        s.schedule_at(SimTime::from_nanos(120), 7);
        assert_eq!(s.pop(), Some((SimTime::from_nanos(120), 7)));
    }

    /// Replays one generated op sequence against both schedulers, asserting
    /// identical `(time, seq)` pops, peeks and lengths at every step.
    fn assert_wheel_matches_heap(ops: &[(u8, u64)]) {
        let mut wheel: Scheduler<u32> = Scheduler::new();
        let mut heap: HeapScheduler<u32> = HeapScheduler::new();
        let mut next_id = 0u32;
        let mut batch = Vec::new();
        for &(kind, bits) in ops {
            match kind {
                0 => {
                    // Absolute schedule, possibly in the past (clamps).
                    let at = SimTime::from_nanos(bits & 0xFFFF_FFFF);
                    wheel.schedule_at(at, next_id);
                    heap.schedule_at(at, next_id);
                    next_id += 1;
                }
                6 => {
                    // Batched slot drain: the wheel pops a whole tick at
                    // once; the heap pops the same count one by one. The
                    // sequences must agree element for element.
                    batch.clear();
                    let n = wheel.pop_batch(&mut batch);
                    for got in &batch {
                        assert_eq!(Some(*got), heap.pop());
                    }
                    if n == 0 {
                        assert_eq!(heap.pop(), None);
                    }
                    assert_eq!(wheel.now(), heap.now());
                }
                1..=5 => {
                    // Relative delays spanning every wheel level plus the
                    // heap overflow (kind 5 reaches past 2^32 ns).
                    let mask = match kind {
                        1 => 0,
                        2 => 0x3FF,
                        3 => 0xF_FFFF,
                        4 => 0x3FFF_FFFF,
                        _ => 0x7_FFFF_FFFF,
                    };
                    let d = SimDuration::from_nanos(bits & mask);
                    wheel.schedule_after(d, next_id);
                    heap.schedule_after(d, next_id);
                    next_id += 1;
                }
                _ => {
                    assert_eq!(wheel.pop(), heap.pop());
                    assert_eq!(wheel.now(), heap.now());
                }
            }
            assert_eq!(wheel.peek_time(), heap.peek_time());
            assert_eq!(wheel.len(), heap.len());
        }
        // Drain both to the end: the full remaining sequence must agree.
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
    }

    proptest! {
        #[test]
        fn differential_wheel_equals_heap(
            ops in proptest::collection::vec((0u8..9, proptest::arbitrary::any::<u64>()), 0..300)
        ) {
            assert_wheel_matches_heap(&ops);
        }
    }
}
