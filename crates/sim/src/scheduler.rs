//! The time-ordered event queue at the heart of the engine.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{SimDuration, SimTime};

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. `seq` makes simultaneous events FIFO and the whole run
        // deterministic.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event scheduler.
///
/// Events are arbitrary payloads of type `E`. Popping advances the
/// simulation clock to the event's timestamp. Events scheduled for the same
/// instant are delivered in the order they were scheduled.
///
/// # Example
///
/// ```
/// use netco_sim::{Scheduler, SimDuration};
///
/// let mut s: Scheduler<u32> = Scheduler::new();
/// s.schedule_after(SimDuration::from_secs(1), 1);
/// s.schedule_after(SimDuration::from_secs(1), 2); // same instant: FIFO
/// assert_eq!(s.pop().unwrap().1, 1);
/// assert_eq!(s.pop().unwrap().1, 2);
/// assert!(s.pop().is_none());
/// ```
#[derive(Default)]
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Entry<E>>,
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// The current simulated time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// Events scheduled in the past are delivered "now" (clock never runs
    /// backwards); this is deliberate so that zero-latency feedback loops
    /// cannot rewind time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "time went backwards");
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Discards all pending events (the clock is unaffected).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(30), "c");
        s.schedule_at(SimTime::from_nanos(10), "a");
        s.schedule_at(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..50 {
            s.schedule_at(SimTime::from_nanos(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_after(SimDuration::from_micros(3), ());
        assert_eq!(s.now(), SimTime::ZERO);
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(3_000));
        assert_eq!(s.now(), t);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(100), 1);
        s.pop();
        s.schedule_at(SimTime::from_nanos(50), 2); // in the past
        let (t, e) = s.pop().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t, SimTime::from_nanos(100));
    }

    #[test]
    fn relative_scheduling_stacks() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule_after(SimDuration::from_nanos(10), 1);
        s.pop();
        s.schedule_after(SimDuration::from_nanos(10), 2);
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(20));
    }

    #[test]
    fn len_empty_clear() {
        let mut s: Scheduler<u8> = Scheduler::new();
        assert!(s.is_empty());
        s.schedule_after(SimDuration::ZERO, 1);
        s.schedule_after(SimDuration::ZERO, 2);
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
        assert!(s.pop().is_none());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut s: Scheduler<u8> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(7), 1);
        assert_eq!(s.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(s.now(), SimTime::ZERO);
    }

    #[test]
    fn interleaved_schedule_pop_is_deterministic() {
        // Two identical runs produce identical traces.
        fn run() -> Vec<(u64, u32)> {
            let mut s: Scheduler<u32> = Scheduler::new();
            let mut out = Vec::new();
            s.schedule_at(SimTime::from_nanos(1), 0);
            while let Some((t, e)) = s.pop() {
                out.push((t.as_nanos(), e));
                if e < 20 {
                    s.schedule_after(SimDuration::from_nanos(2), e + 1);
                    s.schedule_after(SimDuration::from_nanos(2), e + 100);
                }
            }
            out
        }
        assert_eq!(run(), run());
    }
}
