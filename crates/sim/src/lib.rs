//! Deterministic discrete-event simulation engine.
//!
//! This crate is the foundation of the NetCo reproduction: a minimal,
//! single-threaded, fully deterministic discrete-event kernel. It provides
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time,
//! * [`Scheduler`] — a time-ordered event queue with deterministic
//!   tie-breaking (FIFO among simultaneous events),
//! * [`SimRng`] — a seedable, dependency-free PRNG (xoshiro256**), so that
//!   every simulation run is exactly reproducible from its seed,
//! * [`EventLog`] — a timestamped record sink used for traces and security
//!   events.
//!
//! The engine deliberately contains no threading, no wall-clock access and
//! no global state: determinism is a design requirement (see `DESIGN.md §4`),
//! because the paper's experiments must be replayable bit-for-bit.
//!
//! # Example
//!
//! ```
//! use netco_sim::{Scheduler, SimDuration, SimTime};
//!
//! let mut sched: Scheduler<&'static str> = Scheduler::new();
//! sched.schedule_after(SimDuration::from_millis(2), "second");
//! sched.schedule_after(SimDuration::from_millis(1), "first");
//! let (t1, e1) = sched.pop().unwrap();
//! assert_eq!((t1, e1), (SimTime::ZERO + SimDuration::from_millis(1), "first"));
//! let (_, e2) = sched.pop().unwrap();
//! assert_eq!(e2, "second");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fxhash;
mod log;
mod rng;
mod scheduler;
mod time;
mod window;

pub use log::{EventLog, Timestamped};
pub use rng::SimRng;
#[doc(hidden)]
pub use scheduler::baseline;
pub use scheduler::{Scheduler, Tick};
pub use time::{SimDuration, SimTime};
pub use window::ActivationWindow;
