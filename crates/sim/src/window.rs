//! Activation windows: half-open simulated-time spans.

use crate::SimTime;

/// The time span during which something (an adversarial behaviour, an
/// injected fault, a probabilistic link impairment) is active.
///
/// Lives in `netco-sim` so both the adversary layer (scripted attack
/// behaviours) and the substrate fault-injection layer (link outages,
/// loss/corruption windows) share one vocabulary of time spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivationWindow {
    /// Behaviour starts at this instant.
    pub from: SimTime,
    /// Behaviour ends at this instant (`None` = forever).
    pub until: Option<SimTime>,
}

impl ActivationWindow {
    /// Active for the whole simulation.
    pub fn always() -> ActivationWindow {
        ActivationWindow {
            from: SimTime::ZERO,
            until: None,
        }
    }

    /// Active from `from` onwards.
    pub fn starting_at(from: SimTime) -> ActivationWindow {
        ActivationWindow { from, until: None }
    }

    /// Active inside `[from, until)`.
    pub fn between(from: SimTime, until: SimTime) -> ActivationWindow {
        ActivationWindow {
            from,
            until: Some(until),
        }
    }

    /// `true` when the window covers `now`.
    pub fn contains(&self, now: SimTime) -> bool {
        now >= self.from && self.until.is_none_or(|u| now < u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_semantics() {
        let w = ActivationWindow::between(SimTime::from_nanos(10), SimTime::from_nanos(20));
        assert!(!w.contains(SimTime::from_nanos(9)));
        assert!(w.contains(SimTime::from_nanos(10)));
        assert!(w.contains(SimTime::from_nanos(19)));
        assert!(!w.contains(SimTime::from_nanos(20)));
        assert!(ActivationWindow::always().contains(SimTime::from_nanos(0)));
        let s = ActivationWindow::starting_at(SimTime::from_nanos(5));
        assert!(!s.contains(SimTime::from_nanos(4)));
        assert!(s.contains(SimTime::from_nanos(1_000_000_000)));
    }
}
