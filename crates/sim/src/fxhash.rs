//! A deterministic, fast hasher for hot-path hash maps (the compare's
//! packet cache, the flow table's exact-match index).
//!
//! The std `RandomState`/SipHash default is DoS-hardened but slow and — per
//! process — randomly seeded, which is wasted on a deterministic simulator:
//! reproducibility is a design requirement (DESIGN.md §4), and keys are
//! either fixed-width fingerprints or simulator-controlled identifiers.
//! This is the rustc-style "Fx" multiply-rotate hash, hand-rolled to avoid
//! an external dependency. It lives in `netco-sim` (the dependency root)
//! so every layer of the stack shares one implementation.

use std::hash::{BuildHasher, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// [`BuildHasher`] producing [`FxHasher`]s with a fixed (deterministic)
/// initial state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    fn build_hasher(&self) -> FxHasher {
        FxHasher { hash: 0 }
    }
}

/// Multiply-rotate hasher over native words.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
            self.add(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FxBuildHasher.hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn sensitive_to_input() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 4][..]));
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 3, 0][..]));
    }
}
