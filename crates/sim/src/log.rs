//! Timestamped record sinks for traces and security events.

use crate::SimTime;

/// A record paired with the simulated time at which it was produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timestamped<T> {
    /// When the record was appended.
    pub at: SimTime,
    /// The record itself.
    pub record: T,
}

/// An append-only, timestamped event log.
///
/// Used throughout the reproduction for packet drop traces, compare security
/// events, and experiment bookkeeping. The log can be bounded to guard
/// against pathological growth in DoS experiments; when full, the *oldest*
/// entries are retained and a drop counter increments (we prefer keeping the
/// beginning of an incident).
///
/// # Example
///
/// ```
/// use netco_sim::{EventLog, SimTime};
/// let mut log: EventLog<&str> = EventLog::unbounded();
/// log.push(SimTime::ZERO, "boot");
/// assert_eq!(log.len(), 1);
/// assert_eq!(log.iter().next().unwrap().record, "boot");
/// ```
#[derive(Debug, Clone)]
pub struct EventLog<T> {
    entries: Vec<Timestamped<T>>,
    capacity: Option<usize>,
    overflowed: u64,
}

impl<T> EventLog<T> {
    /// Creates a log with no size bound.
    pub fn unbounded() -> Self {
        EventLog {
            entries: Vec::new(),
            capacity: None,
            overflowed: 0,
        }
    }

    /// Creates a log that keeps at most `capacity` entries (the earliest
    /// ones are retained on overflow).
    pub fn bounded(capacity: usize) -> Self {
        EventLog {
            entries: Vec::new(),
            capacity: Some(capacity),
            overflowed: 0,
        }
    }

    /// Appends a record at time `at`. Returns `true` if stored, `false`
    /// if the log was full (the overflow counter increments).
    pub fn push(&mut self, at: SimTime, record: T) -> bool {
        if let Some(cap) = self.capacity {
            if self.entries.len() >= cap {
                self.overflowed += 1;
                return false;
            }
        }
        self.entries.push(Timestamped { at, record });
        true
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of records rejected because the log was full.
    pub fn overflowed(&self) -> u64 {
        self.overflowed
    }

    /// Iterates over stored records in insertion (and therefore time) order.
    pub fn iter(&self) -> std::slice::Iter<'_, Timestamped<T>> {
        self.entries.iter()
    }

    /// Consumes the log, returning its entries.
    pub fn into_entries(self) -> Vec<Timestamped<T>> {
        self.entries
    }

    /// Removes all entries (the overflow counter is preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl<T> Default for EventLog<T> {
    fn default() -> Self {
        EventLog::unbounded()
    }
}

impl<'a, T> IntoIterator for &'a EventLog<T> {
    type Item = &'a Timestamped<T>;
    type IntoIter = std::slice::Iter<'a, Timestamped<T>>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_stores_everything() {
        let mut log = EventLog::unbounded();
        for i in 0..1_000u32 {
            assert!(log.push(SimTime::from_nanos(i as u64), i));
        }
        assert_eq!(log.len(), 1_000);
        assert_eq!(log.overflowed(), 0);
    }

    #[test]
    fn bounded_keeps_earliest() {
        let mut log = EventLog::bounded(3);
        for i in 0..5u32 {
            log.push(SimTime::from_nanos(i as u64), i);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.overflowed(), 2);
        let kept: Vec<_> = log.iter().map(|e| e.record).collect();
        assert_eq!(kept, vec![0, 1, 2]);
    }

    #[test]
    fn iteration_preserves_order_and_times() {
        let mut log = EventLog::unbounded();
        log.push(SimTime::from_nanos(5), "a");
        log.push(SimTime::from_nanos(9), "b");
        let v: Vec<_> = (&log).into_iter().collect();
        assert_eq!(v[0].at, SimTime::from_nanos(5));
        assert_eq!(v[1].record, "b");
    }

    #[test]
    fn clear_preserves_overflow_counter() {
        let mut log = EventLog::bounded(1);
        log.push(SimTime::ZERO, 1);
        log.push(SimTime::ZERO, 2);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.overflowed(), 1);
    }
}
