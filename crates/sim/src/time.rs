//! Virtual time: instants and durations with nanosecond resolution.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in nanoseconds since the start of
/// the simulation.
///
/// `SimTime` is a newtype over `u64`; arithmetic with [`SimDuration`] is
/// checked in debug builds (overflow panics) and saturating variants are
/// provided for defensive code.
///
/// # Example
///
/// ```
/// use netco_sim::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_micros(5);
/// assert_eq!(t.as_nanos(), 5_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use netco_sim::SimDuration;
/// let d = SimDuration::from_millis(1) + SimDuration::from_micros(500);
/// assert_eq!(d.as_nanos(), 1_500_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin as a floating point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, or [`SimDuration::ZERO`] if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    ///
    /// Returns `None` when `earlier` is later than `self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Total nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Total microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Total milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a floating point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a float factor, rounding to nanoseconds; saturates.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor >= 0.0 && !factor.is_nan(),
            "factor must be non-negative"
        );
        let v = self.0 as f64 * factor;
        if v >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(v.round() as u64)
        }
    }

    /// Checked subtraction.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_nanos(42).as_nanos(), 42);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(5);
        assert_eq!(t1 - t0, SimDuration::from_millis(5));
        assert_eq!(
            t1 - SimDuration::from_millis(2),
            t0 + SimDuration::from_millis(3)
        );
    }

    #[test]
    fn saturating_since_is_zero_for_future() {
        let t0 = SimTime::from_nanos(10);
        let t1 = SimTime::from_nanos(20);
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
        assert_eq!(t1.saturating_since(t0), SimDuration::from_nanos(10));
        assert_eq!(t0.checked_since(t1), None);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 2, SimDuration::from_micros(5));
        assert_eq!(d.mul_f64(1.5), SimDuration::from_micros(15));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_saturates() {
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    fn from_secs_f64_round_trips() {
        let d = SimDuration::from_secs_f64(0.25);
        assert_eq!(d, SimDuration::from_millis(250));
        assert!((d.as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&n| SimDuration::from_nanos(n))
            .sum();
        assert_eq!(total, SimDuration::from_nanos(6));
    }
}
