//! Seedable, dependency-free pseudo-random number generation.
//!
//! The engine must be exactly reproducible from a seed, so it ships its own
//! small PRNG instead of depending on `rand` (whose output may change across
//! versions). The generator is xoshiro256** seeded via SplitMix64 — the
//! combination recommended by the xoshiro authors.

use crate::SimDuration;

/// A deterministic pseudo-random number generator (xoshiro256**).
///
/// Not cryptographically secure; intended for workload generation and
/// processing-jitter models inside the simulator.
///
/// # Example
///
/// ```
/// use netco_sim::SimRng;
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated component its own stream while staying reproducible.
    pub fn fork(&mut self, label: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_below(hi - lo)
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Returns `base` perturbed by a uniform jitter of at most
    /// `±fraction·base`, never going negative.
    ///
    /// A `fraction` of zero returns `base` unchanged.
    pub fn jitter(&mut self, base: SimDuration, fraction: f64) -> SimDuration {
        if fraction <= 0.0 || base.is_zero() {
            return base;
        }
        let f = 1.0 + fraction * (2.0 * self.next_f64() - 1.0);
        base.mul_f64(f.max(0.0))
    }

    /// Samples an exponential inter-arrival time with the given mean.
    pub fn exponential(&mut self, mean: SimDuration) -> SimDuration {
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        mean.mul_f64(-u.ln())
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::new(9);
        let mut parent2 = SimRng::new(9);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut c3 = parent1.fork(2);
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn range_inclusive_exclusive() {
        let mut rng = SimRng::new(6);
        let mut seen_lo = false;
        for _ in 0..10_000 {
            let v = rng.range(10, 13);
            assert!((10..13).contains(&v));
            seen_lo |= v == 10;
        }
        assert!(seen_lo, "lower bound should be reachable");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut rng = SimRng::new(9);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn jitter_bounds() {
        let mut rng = SimRng::new(10);
        let base = SimDuration::from_micros(100);
        for _ in 0..1_000 {
            let j = rng.jitter(base, 0.2);
            assert!(j >= SimDuration::from_micros(80), "{j}");
            assert!(j <= SimDuration::from_micros(120), "{j}");
        }
        assert_eq!(rng.jitter(base, 0.0), base);
        assert_eq!(rng.jitter(SimDuration::ZERO, 0.5), SimDuration::ZERO);
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = SimRng::new(11);
        let mean = SimDuration::from_micros(50);
        let n = 50_000u64;
        let total: u128 = (0..n)
            .map(|_| rng.exponential(mean).as_nanos() as u128)
            .sum();
        let avg = (total / n as u128) as f64;
        assert!((avg - 50_000.0).abs() < 1_500.0, "avg {avg}ns");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(12);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
