//! Property tests on transport behaviour over lossy links.

use netco_net::{CpuModel, HostNic, LinkSpec, MacAddr, NeighborTable, PortId, World};
use netco_sim::SimDuration;
use netco_traffic::{TcpConfig, TcpReceiver, TcpSender, UdpConfig, UdpSink, UdpSource};
use proptest::prelude::*;
use std::net::Ipv4Addr;

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn nics() -> (HostNic, HostNic) {
    let table: NeighborTable = [(A, MacAddr::local(1)), (B, MacAddr::local(2))]
        .into_iter()
        .collect();
    let mut a = HostNic::new(MacAddr::local(1), A);
    a.neighbors = table.clone();
    let mut b = HostNic::new(MacAddr::local(2), B);
    b.neighbors = table;
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// TCP never double-counts: whatever the link conditions, the bytes
    /// the receiver delivers equal the bytes the sender saw acknowledged,
    /// and delivery is a contiguous prefix (no holes skipped).
    #[test]
    fn tcp_delivery_matches_acks(
        seed in any::<u64>(),
        rate_mbps in 5u64..80,
        queue_kb in 8usize..64,
        latency_us in 10u64..500,
    ) {
        let (na, nb) = nics();
        let mut cfg = TcpConfig::new(B).with_duration(SimDuration::from_millis(400));
        cfg.per_segment_proc = SimDuration::ZERO;
        let cfg2 = cfg.clone();
        let mut w = World::new(seed);
        let snd = w.add_node("snd", TcpSender::new(na, cfg), CpuModel::default());
        let rcv = w.add_node("rcv", TcpReceiver::new(nb, cfg2), CpuModel::default());
        let link = LinkSpec::new(rate_mbps * 1_000_000, SimDuration::from_micros(latency_us))
            .with_queue_bytes(queue_kb * 1024);
        w.connect(snd, PortId(0), rcv, PortId(0), link);
        w.run_for(SimDuration::from_secs(3));
        let report = w.device::<TcpReceiver>(rcv).unwrap().report();
        let stats = w.device::<TcpSender>(snd).unwrap().stats();
        prop_assert!(report.bytes_delivered >= stats.bytes_acked,
            "delivered {} < acked {}", report.bytes_delivered, stats.bytes_acked);
        // Some data must have flowed on any of these links.
        prop_assert!(report.bytes_delivered > 0);
    }

    /// UDP accounting is conserved: received + lost == highest seq + 1,
    /// and the sink never reports more unique datagrams than were sent.
    #[test]
    fn udp_accounting_conserved(
        seed in any::<u64>(),
        rate_mbps in 1u64..40,
        queue_kb in 4usize..64,
    ) {
        let (na, nb) = nics();
        let cfg = UdpConfig::new(B)
            .with_rate(rate_mbps * 1_000_000)
            .with_payload_len(1000)
            .with_send_cost(SimDuration::ZERO)
            .with_duration(SimDuration::from_millis(300));
        let mut w = World::new(seed);
        let src = w.add_node("src", UdpSource::new(na, cfg), CpuModel::default());
        let dst = w.add_node("dst", UdpSink::new(nb, 5001), CpuModel::default());
        let link = LinkSpec::new(10_000_000, SimDuration::from_micros(50))
            .with_queue_bytes(queue_kb * 1024);
        w.connect(src, PortId(0), dst, PortId(0), link);
        w.run_for(SimDuration::from_secs(1));
        let sent = w.device::<UdpSource>(src).unwrap().sent();
        let report = w.device::<UdpSink>(dst).unwrap().report();
        prop_assert!(report.received <= sent);
        prop_assert!(report.received + report.lost <= sent,
            "received {} + lost {} > sent {}", report.received, report.lost, sent);
        prop_assert!(report.loss_fraction >= 0.0 && report.loss_fraction <= 1.0);
    }
}
