//! Measurement primitives: jitter, RTT statistics, sequence tracking.

use netco_sim::{SimDuration, SimTime};

/// RFC 3550 §6.4.1 interarrival jitter estimator (what `iperf -u` reports).
///
/// Fed with (send time, arrival time) pairs; maintains
/// `J += (|D(i-1,i)| − J) / 16`.
#[derive(Debug, Clone, Default)]
pub struct JitterMeter {
    prev_transit: Option<i64>,
    jitter_ns: f64,
    samples: u64,
}

impl JitterMeter {
    /// Creates an empty meter.
    pub fn new() -> JitterMeter {
        JitterMeter::default()
    }

    /// Records one packet.
    pub fn record(&mut self, sent: SimTime, arrived: SimTime) {
        let transit = arrived.as_nanos() as i64 - sent.as_nanos() as i64;
        if let Some(prev) = self.prev_transit {
            let d = (transit - prev).abs() as f64;
            self.jitter_ns += (d - self.jitter_ns) / 16.0;
        }
        self.prev_transit = Some(transit);
        self.samples += 1;
    }

    /// The current jitter estimate.
    pub fn jitter(&self) -> SimDuration {
        SimDuration::from_nanos(self.jitter_ns.max(0.0) as u64)
    }

    /// Packets recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// RTT statistics like `ping` prints: min / avg / max / mdev.
#[derive(Debug, Clone, Default)]
pub struct RttStats {
    samples: Vec<SimDuration>,
}

impl RttStats {
    /// Creates an empty collection.
    pub fn new() -> RttStats {
        RttStats::default()
    }

    /// Records one round-trip sample.
    pub fn record(&mut self, rtt: SimDuration) {
        self.samples.push(rtt);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<SimDuration> {
        self.samples.iter().min().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<SimDuration> {
        self.samples.iter().max().copied()
    }

    /// Arithmetic mean.
    pub fn avg(&self) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        let total: u128 = self.samples.iter().map(|d| d.as_nanos() as u128).sum();
        Some(SimDuration::from_nanos(
            (total / self.samples.len() as u128) as u64,
        ))
    }

    /// Mean absolute deviation (`ping`'s `mdev`).
    pub fn mdev(&self) -> Option<SimDuration> {
        let avg = self.avg()?.as_nanos() as i64;
        let total: u64 = self
            .samples
            .iter()
            .map(|d| (d.as_nanos() as i64 - avg).unsigned_abs())
            .sum();
        Some(SimDuration::from_nanos(total / self.samples.len() as u64))
    }

    /// The `q`-quantile (nearest-rank), e.g. `0.5` for the median or
    /// `0.99` for the tail.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<SimDuration> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }
}

/// Tracks received sequence numbers: delivered / lost / duplicated counts.
///
/// Loss is computed against the highest sequence seen (`iperf` semantics:
/// trailing losses after the last received packet are invisible, which is
/// fine for long runs).
#[derive(Debug, Clone, Default)]
pub struct SeqTracker {
    seen: std::collections::HashSet<u32>,
    highest: Option<u32>,
    received: u64,
    duplicates: u64,
}

impl SeqTracker {
    /// Creates an empty tracker.
    pub fn new() -> SeqTracker {
        SeqTracker::default()
    }

    /// Records one arriving sequence number. Returns `false` for a
    /// duplicate.
    pub fn record(&mut self, seq: u32) -> bool {
        if self.seen.insert(seq) {
            self.received += 1;
            self.highest = Some(self.highest.map_or(seq, |h| h.max(seq)));
            true
        } else {
            self.duplicates += 1;
            false
        }
    }

    /// Unique packets received.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Duplicate deliveries observed.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Packets presumed lost (gaps below the highest seen sequence).
    pub fn lost(&self) -> u64 {
        match self.highest {
            None => 0,
            Some(h) => (h as u64 + 1).saturating_sub(self.received),
        }
    }

    /// Loss fraction in `[0, 1]`.
    pub fn loss_fraction(&self) -> f64 {
        let expected = match self.highest {
            None => return 0.0,
            Some(h) => h as u64 + 1,
        };
        self.lost() as f64 / expected as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_zero_for_constant_transit() {
        let mut j = JitterMeter::new();
        for i in 0..10u64 {
            let sent = SimTime::from_nanos(i * 1_000_000);
            let arrived = sent + SimDuration::from_micros(100);
            j.record(sent, arrived);
        }
        assert_eq!(j.jitter(), SimDuration::ZERO);
        assert_eq!(j.samples(), 10);
    }

    #[test]
    fn jitter_grows_with_variance() {
        let mut j = JitterMeter::new();
        for i in 0..100u64 {
            let sent = SimTime::from_nanos(i * 1_000_000);
            let delay = if i % 2 == 0 { 100 } else { 200 };
            j.record(sent, sent + SimDuration::from_micros(delay));
        }
        // D alternates ±100 µs; the estimator converges toward 100 µs.
        let jit = j.jitter().as_micros();
        assert!(jit > 50 && jit <= 100, "jitter {jit}us");
    }

    #[test]
    fn rtt_stats_basics() {
        let mut r = RttStats::new();
        assert!(r.is_empty());
        assert_eq!(r.avg(), None);
        for ms in [1u64, 2, 3] {
            r.record(SimDuration::from_millis(ms));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.min(), Some(SimDuration::from_millis(1)));
        assert_eq!(r.max(), Some(SimDuration::from_millis(3)));
        assert_eq!(r.avg(), Some(SimDuration::from_millis(2)));
        // |1-2| + |2-2| + |3-2| = 2ms over 3 samples.
        assert_eq!(r.mdev(), Some(SimDuration::from_nanos(666_666)));
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut r = RttStats::new();
        for ms in 1..=100u64 {
            r.record(SimDuration::from_millis(ms));
        }
        assert_eq!(r.percentile(0.5), Some(SimDuration::from_millis(50)));
        assert_eq!(r.percentile(0.99), Some(SimDuration::from_millis(99)));
        assert_eq!(r.percentile(1.0), Some(SimDuration::from_millis(100)));
        assert_eq!(r.percentile(0.0), Some(SimDuration::from_millis(1)));
        assert_eq!(RttStats::new().percentile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn percentile_rejects_bad_quantile() {
        let mut r = RttStats::new();
        r.record(SimDuration::from_millis(1));
        let _ = r.percentile(1.5);
    }

    #[test]
    fn seq_tracker_counts_losses_and_dups() {
        let mut t = SeqTracker::new();
        for s in [0u32, 1, 3, 3, 5] {
            t.record(s);
        }
        assert_eq!(t.received(), 4); // 0,1,3,5
        assert_eq!(t.duplicates(), 1);
        assert_eq!(t.lost(), 2); // 2 and 4
        assert!((t.loss_fraction() - 2.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn seq_tracker_empty() {
        let t = SeqTracker::new();
        assert_eq!(t.lost(), 0);
        assert_eq!(t.loss_fraction(), 0.0);
    }

    #[test]
    fn jitter_empty_and_single_sample() {
        let j = JitterMeter::new();
        assert_eq!(j.jitter(), SimDuration::ZERO);
        assert_eq!(j.samples(), 0);
        // One packet has no predecessor: transit difference undefined, so
        // the estimate must stay zero regardless of the transit itself.
        let mut j = JitterMeter::new();
        j.record(SimTime::ZERO, SimTime::from_nanos(5_000_000));
        assert_eq!(j.jitter(), SimDuration::ZERO);
        assert_eq!(j.samples(), 1);
    }

    #[test]
    fn jitter_handles_clock_skew_negative_transit() {
        // Sender clock ahead of the receiver: transit is negative, but the
        // estimator only ever sees |D|, so it still converges.
        let mut j = JitterMeter::new();
        for i in 0..32u64 {
            let sent = SimTime::from_nanos(10_000_000 + i * 1_000_000);
            let arrived = SimTime::from_nanos(i * 1_000_000 + (i % 2) * 1_000);
            j.record(sent, arrived);
        }
        let jit = j.jitter().as_nanos();
        assert!(jit > 0 && jit <= 1_000, "jitter {jit}ns");
    }

    #[test]
    fn rtt_single_sample_degenerate_stats() {
        let mut r = RttStats::new();
        r.record(SimDuration::from_millis(7));
        assert_eq!(r.min(), r.max());
        assert_eq!(r.avg(), Some(SimDuration::from_millis(7)));
        assert_eq!(r.mdev(), Some(SimDuration::ZERO));
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(r.percentile(q), Some(SimDuration::from_millis(7)));
        }
    }

    #[test]
    fn rtt_empty_everything_is_none() {
        let r = RttStats::new();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.min(), None);
        assert_eq!(r.max(), None);
        assert_eq!(r.avg(), None);
        assert_eq!(r.mdev(), None);
        assert_eq!(r.percentile(0.99), None);
    }

    #[test]
    fn seq_tracker_repeated_duplicates_of_one_seq() {
        let mut t = SeqTracker::new();
        assert!(t.record(9));
        for _ in 0..5 {
            assert!(!t.record(9));
        }
        assert_eq!(t.received(), 1);
        assert_eq!(t.duplicates(), 5);
        // Duplicates never inflate the loss estimate.
        assert_eq!(t.lost(), 9);
    }

    #[test]
    fn seq_tracker_u32_boundary() {
        // A sender that wraps its 32-bit counter delivers u32::MAX; the
        // expected count (highest + 1) must not overflow u64 arithmetic.
        let mut t = SeqTracker::new();
        assert!(t.record(u32::MAX));
        assert!(t.record(0));
        assert!(!t.record(u32::MAX));
        assert_eq!(t.received(), 2);
        assert_eq!(t.duplicates(), 1);
        assert_eq!(t.lost(), u32::MAX as u64 + 1 - 2);
        let expected = u32::MAX as u64 + 1;
        let want = (expected - 2) as f64 / expected as f64;
        assert!((t.loss_fraction() - want).abs() < 1e-12);
    }

    #[test]
    fn seq_tracker_out_of_order_is_not_loss() {
        let mut t = SeqTracker::new();
        for s in [4u32, 2, 0, 3, 1] {
            assert!(t.record(s));
        }
        assert_eq!(t.received(), 5);
        assert_eq!(t.lost(), 0);
        assert_eq!(t.loss_fraction(), 0.0);
    }
}
