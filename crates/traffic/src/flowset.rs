//! A million-flow traffic engine.
//!
//! [`FlowSet`] is a single device that drives an arbitrary number of
//! concurrent flows — the workload shape the paper's testbed could never
//! reach (Mininet tops out at thousands of iperf processes). Instead of one
//! device per flow, all per-flow state lives in struct-of-arrays slabs
//! inside one device, and one service timer drains a pacing heap. That
//! keeps the marginal cost of a flow to a few dozen bytes and one heap
//! entry, so a single world comfortably holds 10⁶ live flows.
//!
//! The engine is deterministic end to end: flow sizes and arrival times
//! come from per-flow splitmix64 streams derived from the world seed, so
//! two runs with the same seed produce bit-identical packet sequences
//! (checkable via [`FlowSetStats::digest`]).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;

use bytes::Bytes;
use netco_net::packet::builder;
use netco_net::packet::L4View;
use netco_net::{Ctx, Device, Frame, HostNic, MacAddr, PortId};
use netco_sim::{SimDuration, SimTime};

use crate::common::NIC_PORT;

/// Heavy-tailed flow-size distributions (bytes per flow).
///
/// Real data-center and WAN traffic is famously heavy-tailed: most flows
/// are mice, most *bytes* are in elephants. Both shapes here reproduce
/// that with two parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDist {
    /// Every flow carries exactly this many bytes.
    Fixed(u64),
    /// Pareto (power-law) sizes: `P(X > x) = (xm / x)^alpha` for `x ≥ xm`.
    /// `alpha ≤ 2` gives the classic infinite-variance elephant tail.
    Pareto {
        /// Tail index (smaller = heavier tail). Typical: 1.1–1.5.
        alpha: f64,
        /// Minimum flow size in bytes (the mouse size).
        min_bytes: u64,
    },
    /// Log-normal sizes: `ln X ~ N(mu, sigma²)`, `X` in bytes.
    Lognormal {
        /// Mean of `ln(bytes)`.
        mu: f64,
        /// Standard deviation of `ln(bytes)`.
        sigma: f64,
    },
}

impl SizeDist {
    /// Draws a flow size (in bytes, ≥ 1) from the distribution.
    fn sample(self, rng: &mut FlowRng) -> u64 {
        match self {
            SizeDist::Fixed(bytes) => bytes.max(1),
            SizeDist::Pareto { alpha, min_bytes } => {
                // Inverse CDF: xm * (1 - u)^(-1/alpha). Clamp the astronomically
                // unlikely tail so a single flow cannot run past the heat death
                // of the simulation.
                let u = rng.next_f64();
                let size = min_bytes.max(1) as f64 * (1.0 - u).powf(-1.0 / alpha.max(1e-6));
                size.min(1e15) as u64
            }
            SizeDist::Lognormal { mu, sigma } => {
                // Box–Muller; one draw per flow, the second normal is unused
                // to keep per-flow streams independent of call parity.
                let u1 = rng.next_f64().max(f64::MIN_POSITIVE);
                let u2 = rng.next_f64();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (mu + sigma * z).exp().clamp(1.0, 1e15) as u64
            }
        }
    }
}

/// Configuration of a [`FlowSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSetConfig {
    /// Destination IPv4 address (a [`FlowSink`] usually lives there).
    pub dst_ip: Ipv4Addr,
    /// Destination UDP port.
    pub dst_port: u16,
    /// Source UDP port.
    pub src_port: u16,
    /// Flows pre-spawned at start (their first packets are staggered over
    /// [`start_spread`](FlowSetConfig::start_spread) to avoid a single-tick
    /// burst). This is how benchmarks reach millions of *concurrent* flows
    /// without waiting for a Poisson ramp.
    pub initial_flows: usize,
    /// Open-loop Poisson arrival rate, flows per second (0 = no arrivals).
    pub arrival_rate_fps: f64,
    /// New-flow arrivals stop after this long (pre-spawned flows and flows
    /// already in flight still drain).
    pub arrival_window: SimDuration,
    /// Flow size distribution, bytes per flow.
    pub size_dist: SizeDist,
    /// UDP payload bytes per packet (a flow of `n` bytes sends
    /// `ceil(n / payload_len)` packets).
    pub payload_len: usize,
    /// Per-flow pacing rate in bits/s of payload.
    pub flow_rate_bps: u64,
    /// Window over which pre-spawned flows' first packets are staggered.
    pub start_spread: SimDuration,
    /// Reuse one template frame per (destination MAC, payload length)
    /// instead of building every packet from scratch. All packets of this
    /// engine with equal length are byte-identical (zero payload, constant
    /// headers, IP id 0), so emitting clones of a cached [`Frame`] is
    /// wire-equivalent and O(1) — and every clone shares one parse memo at
    /// the sink. Off reproduces the pre-cache (PR-9) build cost for A/B
    /// baselines.
    pub frame_cache: bool,
    /// Stamp each packet's payload with the flow id and a per-engine
    /// emission counter (16 big-endian bytes) so every packet this engine
    /// emits is content-unique. Required when the traffic crosses a NetCo
    /// compare: its content-keyed packet cache (paper §V) suppresses
    /// byte-identical packets as replicated-copy duplicates, so an
    /// all-zero-payload stream would collapse to one release per vote key.
    /// Takes precedence over [`frame_cache`](FlowSetConfig::frame_cache)
    /// (a unique payload has no template to share).
    pub tagged_payload: bool,
}

impl FlowSetConfig {
    /// A mice-heavy default: Pareto(1.2, 4 kB) flows at 100 flows/s toward
    /// `dst_ip:5001`, each paced at 10 Mbit/s.
    pub fn new(dst_ip: Ipv4Addr) -> FlowSetConfig {
        FlowSetConfig {
            dst_ip,
            dst_port: 5001,
            src_port: 40000,
            initial_flows: 0,
            arrival_rate_fps: 100.0,
            arrival_window: SimDuration::from_secs(10),
            size_dist: SizeDist::Pareto {
                alpha: 1.2,
                min_bytes: 4096,
            },
            payload_len: 1200,
            flow_rate_bps: 10_000_000,
            start_spread: SimDuration::from_millis(100),
            frame_cache: true,
            tagged_payload: false,
        }
    }

    /// Builder: sets the number of pre-spawned flows.
    pub fn with_initial_flows(mut self, n: usize) -> FlowSetConfig {
        self.initial_flows = n;
        self
    }

    /// Builder: sets the Poisson arrival rate (flows/s).
    pub fn with_arrival_rate(mut self, fps: f64) -> FlowSetConfig {
        self.arrival_rate_fps = fps;
        self
    }

    /// Builder: sets the arrival window.
    pub fn with_arrival_window(mut self, d: SimDuration) -> FlowSetConfig {
        self.arrival_window = d;
        self
    }

    /// Builder: sets the size distribution.
    pub fn with_size_dist(mut self, dist: SizeDist) -> FlowSetConfig {
        self.size_dist = dist;
        self
    }

    /// Builder: sets the per-packet payload length.
    pub fn with_payload_len(mut self, len: usize) -> FlowSetConfig {
        self.payload_len = len.max(1);
        self
    }

    /// Builder: sets the per-flow pacing rate.
    pub fn with_flow_rate(mut self, bps: u64) -> FlowSetConfig {
        self.flow_rate_bps = bps.max(1);
        self
    }

    /// Builder: sets the start-stagger window for pre-spawned flows.
    pub fn with_start_spread(mut self, d: SimDuration) -> FlowSetConfig {
        self.start_spread = d;
        self
    }

    /// Builder: enables or disables the template-frame cache (on by
    /// default; see [`FlowSetConfig::frame_cache`]).
    pub fn with_frame_cache(mut self, on: bool) -> FlowSetConfig {
        self.frame_cache = on;
        self
    }

    /// Builder: enables or disables per-packet payload tagging (off by
    /// default; see [`FlowSetConfig::tagged_payload`]).
    pub fn with_tagged_payload(mut self, on: bool) -> FlowSetConfig {
        self.tagged_payload = on;
        self
    }

    /// Pacing gap between two packets of one flow.
    fn packet_gap(&self) -> SimDuration {
        let bits = self.payload_len as u64 * 8;
        SimDuration::from_nanos(bits.saturating_mul(1_000_000_000) / self.flow_rate_bps.max(1))
    }
}

/// Counters and the determinism digest of a [`FlowSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowSetStats {
    /// Flows created (pre-spawned + Poisson arrivals).
    pub spawned: u64,
    /// Flows that sent their last byte.
    pub completed: u64,
    /// Flows currently live.
    pub active: u64,
    /// Packets emitted.
    pub packets_sent: u64,
    /// Payload bytes emitted.
    pub bytes_sent: u64,
    /// Running fingerprint of every (time, flow, length) emission. Two runs
    /// of the same seeded world are bit-identical iff digests match.
    pub digest: u64,
}

/// A deterministic per-flow splitmix64 stream.
#[derive(Debug, Clone, Copy)]
struct FlowRng(u64);

impl FlowRng {
    fn new(base: u64, flow_id: u64) -> FlowRng {
        // Decorrelate adjacent flow ids before the stream starts.
        FlowRng(splitmix(base ^ splitmix(flow_id)))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix(self.0)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn digest_fold(digest: u64, value: u64) -> u64 {
    splitmix(digest ^ value)
}

const ARRIVAL_TIMER: u64 = 1;
const SERVICE_TIMER: u64 = 2;

/// All-zero payload backing store, shared by every emitted packet.
static ZERO_PAYLOAD: [u8; 65536] = [0u8; 65536];

fn zero_payload(len: usize) -> Bytes {
    Bytes::from_static(&ZERO_PAYLOAD[..len.min(ZERO_PAYLOAD.len())])
}

/// The million-flow engine. See the [module docs](self) for the design.
///
/// Per-flow state is three parallel slabs (`remaining`, `rng`, `flow_id`)
/// plus one entry in the pacing heap; freed slots are recycled through a
/// free list, so memory is bounded by the *peak* concurrent flow count,
/// not the total spawned.
#[derive(Debug)]
pub struct FlowSet {
    nic: HostNic,
    cfg: FlowSetConfig,
    /// Base for per-flow RNG streams, forked from the world seed at start.
    rng_base: u64,
    /// Stream for arrival-process draws (interarrival gaps).
    arrival_rng: FlowRng,
    // --- slabs, indexed by slot ---
    remaining: Vec<u64>,
    rng: Vec<FlowRng>,
    flow_id: Vec<u64>,
    free: Vec<u32>,
    /// Pacing heap: earliest next-packet deadline first; `order` is a
    /// monotone tiebreak so equal deadlines fire in spawn order.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    order: u64,
    /// The deadline the earliest outstanding service timer targets.
    armed_for: Option<SimTime>,
    arrivals_until: SimTime,
    /// Template-frame cache: the last emitted (dst MAC, payload length)
    /// frame, cloned for every packet that matches (the overwhelmingly
    /// common case — all full-size packets of a run are byte-identical).
    tmpl: Option<(MacAddr, u64, Frame)>,
    stats: FlowSetStats,
}

impl FlowSet {
    /// Creates the engine on `nic`.
    pub fn new(nic: HostNic, cfg: FlowSetConfig) -> FlowSet {
        FlowSet {
            nic,
            cfg,
            rng_base: 0,
            arrival_rng: FlowRng(0),
            remaining: Vec::new(),
            rng: Vec::new(),
            flow_id: Vec::new(),
            free: Vec::new(),
            heap: BinaryHeap::new(),
            order: 0,
            armed_for: None,
            arrivals_until: SimTime::ZERO,
            tmpl: None,
            stats: FlowSetStats::default(),
        }
    }

    /// Counters and digest so far.
    pub fn stats(&self) -> FlowSetStats {
        self.stats
    }

    /// Flows currently live.
    pub fn active(&self) -> u64 {
        self.stats.active
    }

    fn spawn_flow(&mut self, first_due: SimTime) {
        let id = self.stats.spawned;
        let mut rng = FlowRng::new(self.rng_base, id);
        let size = self.cfg.size_dist.sample(&mut rng);
        let slot = match self.free.pop() {
            Some(s) => {
                self.remaining[s as usize] = size;
                self.rng[s as usize] = rng;
                self.flow_id[s as usize] = id;
                s
            }
            None => {
                self.remaining.push(size);
                self.rng.push(rng);
                self.flow_id.push(id);
                (self.remaining.len() - 1) as u32
            }
        };
        self.heap.push(Reverse((first_due, self.order, slot)));
        self.order += 1;
        self.stats.spawned += 1;
        self.stats.active += 1;
    }

    /// Emits one packet for `slot`; returns the flow's next deadline, or
    /// `None` when the flow just sent its last byte.
    fn service_slot(&mut self, ctx: &mut Ctx<'_>, now: SimTime, slot: u32) -> Option<SimTime> {
        let i = slot as usize;
        let take = (self.cfg.payload_len as u64).min(self.remaining[i]);
        if let Some(dst_mac) = self.nic.resolve(self.cfg.dst_ip) {
            let frame = self.frame_for(dst_mac, take, self.flow_id[i]);
            ctx.send_frame(NIC_PORT, frame);
        }
        self.remaining[i] -= take;
        self.stats.packets_sent += 1;
        self.stats.bytes_sent += take;
        let d = digest_fold(self.stats.digest, now.as_nanos());
        let d = digest_fold(d, self.flow_id[i]);
        self.stats.digest = digest_fold(d, take);
        if self.remaining[i] == 0 {
            self.stats.completed += 1;
            self.stats.active -= 1;
            self.free.push(slot);
            None
        } else {
            Some(now + self.cfg.packet_gap())
        }
    }

    /// One packet's wire frame: a clone of the cached template when the
    /// (dst MAC, length) pair matches, a fresh build otherwise. The built
    /// frame is byte-identical either way (see
    /// [`FlowSetConfig::frame_cache`]) — unless payload tagging is on, in
    /// which case every packet is unique and always built fresh.
    fn frame_for(&mut self, dst_mac: MacAddr, take: u64, flow_id: u64) -> Frame {
        if self.cfg.tagged_payload {
            let mut payload = vec![0u8; take as usize];
            let mut tag = [0u8; 16];
            tag[..8].copy_from_slice(&flow_id.to_be_bytes());
            tag[8..].copy_from_slice(&self.stats.packets_sent.to_be_bytes());
            let n = payload.len().min(tag.len());
            payload[..n].copy_from_slice(&tag[..n]);
            return Frame::from(builder::udp_frame(
                self.nic.mac,
                dst_mac,
                self.nic.ip,
                self.cfg.dst_ip,
                self.cfg.src_port,
                self.cfg.dst_port,
                Bytes::from(payload),
                None,
            ));
        }
        if self.cfg.frame_cache {
            if let Some((mac, len, f)) = &self.tmpl {
                if *mac == dst_mac && *len == take {
                    return f.clone();
                }
            }
        }
        let frame = Frame::from(builder::udp_frame(
            self.nic.mac,
            dst_mac,
            self.nic.ip,
            self.cfg.dst_ip,
            self.cfg.src_port,
            self.cfg.dst_port,
            zero_payload(take as usize),
            None,
        ));
        if self.cfg.frame_cache {
            self.tmpl = Some((dst_mac, take, frame.clone()));
        }
        frame
    }

    /// Ensures a service timer is pending for the heap's earliest deadline.
    fn arm_service(&mut self, ctx: &mut Ctx<'_>) {
        let Some(&Reverse((due, _, _))) = self.heap.peek() else {
            return;
        };
        if self.armed_for.is_some_and(|t| t <= due) {
            return;
        }
        self.armed_for = Some(due);
        ctx.schedule_timer(due.saturating_since(ctx.now()), SERVICE_TIMER);
    }

    fn schedule_next_arrival(&mut self, ctx: &mut Ctx<'_>) {
        if self.cfg.arrival_rate_fps <= 0.0 {
            return;
        }
        // Exponential interarrival gap: -ln(1-u)/lambda.
        let u = self.arrival_rng.next_f64();
        let gap_s = -(1.0 - u).max(f64::MIN_POSITIVE).ln() / self.cfg.arrival_rate_fps;
        let gap = SimDuration::from_secs_f64(gap_s.min(3600.0));
        if ctx.now() + gap <= self.arrivals_until {
            ctx.schedule_timer(gap, ARRIVAL_TIMER);
        }
    }
}

impl Device for FlowSet {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.rng_base = ctx.rng().next_u64();
        self.arrival_rng = FlowRng::new(self.rng_base, u64::MAX);
        self.arrivals_until = ctx.now() + self.cfg.arrival_window;
        let now = ctx.now();
        let spread = self.cfg.start_spread.as_nanos();
        for _ in 0..self.cfg.initial_flows {
            // Stagger first packets over the spread window; each flow's
            // offset comes from its own stream so the pattern is seed-stable.
            let mut r = FlowRng::new(self.rng_base ^ 0x5eed, self.stats.spawned);
            let offset = if spread == 0 {
                0
            } else {
                r.next_u64() % spread
            };
            self.spawn_flow(now + SimDuration::from_nanos(offset));
        }
        self.arm_service(ctx);
        self.schedule_next_arrival(ctx);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: PortId, frame: Frame) {
        // The engine is open-loop; it only answers ARP.
        if let Some(reply) = self.nic.handle_arp(&frame) {
            ctx.send_frame(NIC_PORT, reply);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            ARRIVAL_TIMER if ctx.now() <= self.arrivals_until => {
                let now = ctx.now();
                self.spawn_flow(now);
                self.arm_service(ctx);
                self.schedule_next_arrival(ctx);
            }
            ARRIVAL_TIMER => {}
            SERVICE_TIMER => {
                let now = ctx.now();
                if self.armed_for.is_some_and(|t| t <= now) {
                    self.armed_for = None;
                }
                // Drain every flow whose deadline has passed. Deadlines in
                // the heap are unique per live flow, so re-pushing inside
                // the loop is safe: a re-pushed deadline is strictly later
                // than `now` whenever packet_gap > 0.
                while let Some(&Reverse((due, _, slot))) = self.heap.peek() {
                    if due > now {
                        break;
                    }
                    self.heap.pop();
                    if let Some(next) = self.service_slot(ctx, now, slot) {
                        self.heap.push(Reverse((next.max(now), self.order, slot)));
                        self.order += 1;
                        if next <= now {
                            // Zero pacing gap: yield to the scheduler rather
                            // than spinning the whole flow out in one tick.
                            break;
                        }
                    }
                }
                self.arm_service(ctx);
            }
            _ => {}
        }
    }
}

/// A counting sink for [`FlowSet`] traffic.
///
/// Deliberately minimal: it verifies addressing via the NIC filter, counts
/// packets and payload bytes, and folds `(arrival time, wire length)` into
/// a digest — enough to prove two runs delivered bit-identical streams
/// without storing any of them.
#[derive(Debug)]
pub struct FlowSink {
    nic: HostNic,
    packets: u64,
    bytes: u64,
    digest: u64,
}

impl FlowSink {
    /// Creates a sink on `nic`.
    pub fn new(nic: HostNic) -> FlowSink {
        FlowSink {
            nic,
            packets: 0,
            bytes: 0,
            digest: 0,
        }
    }

    /// Packets accepted.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// UDP payload bytes accepted.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Running fingerprint of every accepted (time, length) pair.
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

impl Device for FlowSink {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: PortId, frame: Frame) {
        if let Some(reply) = self.nic.handle_arp(&frame) {
            ctx.send_frame(NIC_PORT, reply);
            return;
        }
        // Memoized full parse: with a template-caching [`FlowSet`] upstream
        // every packet after the first is a clone, so the parse (and UDP
        // checksum verification) happens once per content, not per packet.
        // The per-NIC addressing filter still runs per frame.
        let Some((view, l4)) = frame.views() else {
            return;
        };
        if !self.nic.accepts(&view.eth) {
            return;
        }
        let Some(ip) = view.ipv4() else {
            return;
        };
        if ip.dst != self.nic.ip {
            return;
        }
        let Some(L4View::Udp(udp)) = l4 else {
            return;
        };
        self.packets += 1;
        self.bytes += udp.payload.len() as u64;
        let d = digest_fold(self.digest, ctx.now().as_nanos());
        self.digest = digest_fold(d, udp.payload.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netco_net::{CpuModel, LinkSpec, MacAddr, NeighborTable, World};

    const SRC_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn nics() -> (HostNic, HostNic) {
        let table: NeighborTable = [(SRC_IP, MacAddr::local(1)), (DST_IP, MacAddr::local(2))]
            .into_iter()
            .collect();
        let mut a = HostNic::new(MacAddr::local(1), SRC_IP);
        a.neighbors = table.clone();
        let mut b = HostNic::new(MacAddr::local(2), DST_IP);
        b.neighbors = table;
        (a, b)
    }

    fn run(seed: u64, cfg: FlowSetConfig, secs: u64) -> (FlowSetStats, u64, u64, u64) {
        let (na, nb) = nics();
        let mut w = World::new(seed);
        let src = w.add_node("flows", FlowSet::new(na, cfg), CpuModel::default());
        let dst = w.add_node("sink", FlowSink::new(nb), CpuModel::default());
        w.connect(
            src,
            PortId(0),
            dst,
            PortId(0),
            LinkSpec::new(10_000_000_000, SimDuration::from_micros(5)),
        );
        w.run_for(SimDuration::from_secs(secs));
        let stats = w.device::<FlowSet>(src).unwrap().stats();
        let sink = w.device::<FlowSink>(dst).unwrap();
        (stats, sink.packets(), sink.bytes(), sink.digest())
    }

    fn small_cfg() -> FlowSetConfig {
        FlowSetConfig::new(DST_IP)
            .with_arrival_rate(200.0)
            .with_arrival_window(SimDuration::from_secs(2))
            .with_size_dist(SizeDist::Pareto {
                alpha: 1.3,
                min_bytes: 2000,
            })
            .with_payload_len(1000)
            .with_flow_rate(50_000_000)
    }

    #[test]
    fn flows_complete_and_sink_agrees() {
        let (stats, pkts, bytes, _) = run(7, small_cfg(), 5);
        assert!(stats.spawned > 200, "spawned {}", stats.spawned);
        assert_eq!(stats.active, stats.spawned - stats.completed);
        assert!(
            stats.completed as f64 > stats.spawned as f64 * 0.9,
            "completed {}/{}",
            stats.completed,
            stats.spawned
        );
        assert_eq!(pkts, stats.packets_sent);
        assert_eq!(bytes, stats.bytes_sent);
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let a = run(42, small_cfg(), 4);
        let b = run(42, small_cfg(), 4);
        assert_eq!(a, b);
        assert_ne!(a.0.digest, 0);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run(1, small_cfg(), 3);
        let b = run(2, small_cfg(), 3);
        assert_ne!(a.0.digest, b.0.digest);
    }

    #[test]
    fn pareto_respects_minimum_and_is_heavy_tailed() {
        let mut rng = FlowRng::new(99, 0);
        let dist = SizeDist::Pareto {
            alpha: 1.2,
            min_bytes: 1000,
        };
        let sizes: Vec<u64> = (0..10_000)
            .map(|i| {
                let mut r = FlowRng::new(99, i);
                dist.sample(&mut r)
            })
            .collect();
        assert!(sizes.iter().all(|&s| s >= 1000));
        // Mean far above median is the heavy-tail signature.
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        assert!(mean > 2.0 * median, "mean {mean} median {median}");
        let _ = dist.sample(&mut rng);
    }

    #[test]
    fn lognormal_is_centered_near_exp_mu() {
        let dist = SizeDist::Lognormal {
            mu: 9.0, // e^9 ≈ 8100 bytes
            sigma: 0.5,
        };
        let sizes: Vec<u64> = (0..10_000)
            .map(|i| {
                let mut r = FlowRng::new(7, i);
                dist.sample(&mut r)
            })
            .collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        let expected = 9.0f64.exp();
        assert!(
            (median - expected).abs() / expected < 0.1,
            "median {median} vs {expected}"
        );
    }

    #[test]
    fn slab_slots_are_recycled() {
        // Long run with short flows: peak slab size must stay far below the
        // total number of flows spawned.
        let cfg = FlowSetConfig::new(DST_IP)
            .with_arrival_rate(500.0)
            .with_arrival_window(SimDuration::from_secs(4))
            .with_size_dist(SizeDist::Fixed(1000))
            .with_payload_len(1000)
            .with_flow_rate(100_000_000);
        let (na, nb) = nics();
        let mut w = World::new(3);
        let src = w.add_node("flows", FlowSet::new(na, cfg), CpuModel::default());
        let dst = w.add_node("sink", FlowSink::new(nb), CpuModel::default());
        w.connect(
            src,
            PortId(0),
            dst,
            PortId(0),
            LinkSpec::new(1_000_000_000, SimDuration::from_micros(5)),
        );
        w.run_for(SimDuration::from_secs(5));
        let fs = w.device::<FlowSet>(src).unwrap();
        let stats = fs.stats();
        assert!(stats.spawned > 1000, "spawned {}", stats.spawned);
        assert_eq!(stats.completed, stats.spawned);
        assert!(
            fs.remaining.len() < stats.spawned as usize / 10,
            "slab {} for {} flows",
            fs.remaining.len(),
            stats.spawned
        );
    }

    #[test]
    fn tagged_payloads_make_every_packet_unique() {
        let (na, _) = nics();
        let mut fs = FlowSet::new(
            na.clone(),
            FlowSetConfig::new(DST_IP).with_tagged_payload(true),
        );
        let a = fs.frame_for(MacAddr::local(2), 1200, 5);
        fs.stats.packets_sent += 1;
        let b = fs.frame_for(MacAddr::local(2), 1200, 5);
        assert_ne!(a.bytes(), b.bytes(), "same flow, consecutive packets");
        // Untagged: the identical build the template cache relies on.
        let mut plain = FlowSet::new(na, FlowSetConfig::new(DST_IP));
        let c = plain.frame_for(MacAddr::local(2), 1200, 5);
        plain.stats.packets_sent += 1;
        let d = plain.frame_for(MacAddr::local(2), 1200, 5);
        assert_eq!(c.bytes(), d.bytes());
    }

    #[test]
    fn prespawned_flows_all_start() {
        let cfg = FlowSetConfig::new(DST_IP)
            .with_initial_flows(10_000)
            .with_arrival_rate(0.0)
            .with_size_dist(SizeDist::Fixed(1000))
            .with_payload_len(1000)
            .with_start_spread(SimDuration::from_millis(50));
        let (stats, pkts, _, _) = run(11, cfg, 2);
        assert_eq!(stats.spawned, 10_000);
        assert_eq!(stats.completed, 10_000);
        assert_eq!(pkts, 10_000);
    }
}
