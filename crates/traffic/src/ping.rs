//! ICMP echo measurement (`ping`) and a pure responder host.

use std::net::Ipv4Addr;

use netco_net::packet::{builder, IcmpMessage, IcmpType, L4View};
use netco_net::{Ctx, Device, Frame, HostNic, PortId};
use netco_sim::SimDuration;

use crate::common::{maybe_reply_echo, measurement_payload, parse_measurement, NIC_PORT};
use crate::meters::RttStats;

/// Configuration of a [`Pinger`].
#[derive(Debug, Clone, PartialEq)]
pub struct PingConfig {
    /// Target IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Echo requests to send.
    pub count: u32,
    /// Gap between requests (`ping` default: 1 s; experiments often use
    /// less to keep runs short).
    pub interval: SimDuration,
    /// ICMP payload size (≥ 12; `ping` default 56).
    pub payload_len: usize,
    /// Echo identifier.
    pub identifier: u16,
    /// Delay before the first request.
    pub start_after: SimDuration,
}

impl PingConfig {
    /// 50 echo requests of 56 bytes, 10 ms apart.
    pub fn new(dst_ip: Ipv4Addr) -> PingConfig {
        PingConfig {
            dst_ip,
            count: 50,
            interval: SimDuration::from_millis(10),
            payload_len: 56,
            identifier: 1,
            start_after: SimDuration::ZERO,
        }
    }

    /// Builder: sets the request count.
    pub fn with_count(mut self, count: u32) -> PingConfig {
        self.count = count;
        self
    }

    /// Builder: sets the inter-request interval.
    pub fn with_interval(mut self, interval: SimDuration) -> PingConfig {
        self.interval = interval;
        self
    }
}

impl Default for PingConfig {
    fn default() -> Self {
        PingConfig::new(Ipv4Addr::new(10, 0, 0, 2))
    }
}

/// What a [`Pinger`] measured.
#[derive(Debug, Clone, PartialEq)]
pub struct PingReport {
    /// Requests sent.
    pub transmitted: u32,
    /// Replies received (duplicates ignored).
    pub received: u32,
    /// Minimum RTT.
    pub min: Option<SimDuration>,
    /// Average RTT.
    pub avg: Option<SimDuration>,
    /// Maximum RTT.
    pub max: Option<SimDuration>,
    /// Mean absolute deviation of the RTT.
    pub mdev: Option<SimDuration>,
}

/// Sends ICMP echo requests and measures round-trip times.
#[derive(Debug)]
pub struct Pinger {
    nic: HostNic,
    cfg: PingConfig,
    next_seq: u32,
    transmitted: u32,
    answered: std::collections::HashSet<u16>,
    rtts: RttStats,
}

const PING_TIMER: u64 = 1;

impl Pinger {
    /// Creates a pinger on `nic`.
    pub fn new(nic: HostNic, cfg: PingConfig) -> Pinger {
        Pinger {
            nic,
            cfg,
            next_seq: 0,
            transmitted: 0,
            answered: std::collections::HashSet::new(),
            rtts: RttStats::new(),
        }
    }

    /// Adjusts the start delay; effective only before the simulation runs.
    pub fn set_start_after(&mut self, delay: SimDuration) {
        self.cfg.start_after = delay;
    }

    /// The measurement report so far.
    pub fn report(&self) -> PingReport {
        PingReport {
            transmitted: self.transmitted,
            received: self.answered.len() as u32,
            min: self.rtts.min(),
            avg: self.rtts.avg(),
            max: self.rtts.max(),
            mdev: self.rtts.mdev(),
        }
    }
}

impl Device for Pinger {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.schedule_timer(self.cfg.start_after, PING_TIMER);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: PortId, frame: Frame) {
        if let Some(reply) = self.nic.handle_arp(&frame) {
            ctx.send_frame(NIC_PORT, reply);
            return;
        }
        let Some(view) = self.nic.deliver_shared(frame.bytes()) else {
            return;
        };
        let Some(ip) = view.ipv4().cloned() else {
            return;
        };
        let Ok(Some(l4)) = view.l4() else { return };
        match &l4 {
            L4View::Icmp(msg)
                if msg.icmp_type == IcmpType::EchoReply
                    && msg.identifier == self.cfg.identifier =>
            {
                if let Some((_, sent_at)) = parse_measurement(&msg.payload) {
                    // Count each sequence once; late duplicates ignored.
                    if self.answered.insert(msg.sequence) {
                        self.rtts.record(ctx.now().saturating_since(sent_at));
                    }
                }
            }
            other => {
                maybe_reply_echo(ctx, &self.nic, ip.src, other);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != PING_TIMER || self.transmitted >= self.cfg.count {
            return;
        }
        let now = ctx.now();
        match self.nic.resolve(self.cfg.dst_ip) {
            Some(dst_mac) => {
                let payload = measurement_payload(self.next_seq, now, self.cfg.payload_len);
                let msg =
                    IcmpMessage::echo_request(self.cfg.identifier, self.next_seq as u16, payload);
                let frame = builder::icmp_frame(
                    self.nic.mac,
                    dst_mac,
                    self.nic.ip,
                    self.cfg.dst_ip,
                    msg,
                    None,
                );
                ctx.send_frame(NIC_PORT, frame);
                self.transmitted += 1;
                self.next_seq = self.next_seq.wrapping_add(1);
            }
            None => {
                // Unknown neighbor: ARP for it and retry; the reply is
                // learned in `on_frame`.
                ctx.send_frame(NIC_PORT, self.nic.make_arp_request(self.cfg.dst_ip));
            }
        }
        if self.transmitted < self.cfg.count {
            ctx.schedule_timer(self.cfg.interval, PING_TIMER);
        }
    }
}

/// A host that does nothing but answer pings (the far end of Fig. 7's
/// measurements).
#[derive(Debug)]
pub struct IcmpEchoResponder {
    nic: HostNic,
    replied: u64,
}

impl IcmpEchoResponder {
    /// Creates a responder on `nic`.
    pub fn new(nic: HostNic) -> IcmpEchoResponder {
        IcmpEchoResponder { nic, replied: 0 }
    }

    /// Echo requests answered.
    pub fn replied(&self) -> u64 {
        self.replied
    }
}

impl Device for IcmpEchoResponder {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: PortId, frame: Frame) {
        if let Some(reply) = self.nic.handle_arp(&frame) {
            ctx.send_frame(NIC_PORT, reply);
            return;
        }
        let Some(view) = self.nic.deliver_shared(frame.bytes()) else {
            return;
        };
        let Some(ip) = view.ipv4().cloned() else {
            return;
        };
        if let Ok(Some(l4)) = view.l4() {
            if maybe_reply_echo(ctx, &self.nic, ip.src, &l4) {
                self.replied += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netco_net::{CpuModel, LinkSpec, MacAddr, NeighborTable, World};

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn nics() -> (HostNic, HostNic) {
        let table: NeighborTable = [(A, MacAddr::local(1)), (B, MacAddr::local(2))]
            .into_iter()
            .collect();
        let mut a = HostNic::new(MacAddr::local(1), A);
        a.neighbors = table.clone();
        let mut b = HostNic::new(MacAddr::local(2), B);
        b.neighbors = table;
        (a, b)
    }

    #[test]
    fn fifty_pings_round_trip() {
        let (na, nb) = nics();
        let mut w = World::new(9);
        let pinger = w.add_node(
            "pinger",
            Pinger::new(na, PingConfig::new(B)),
            CpuModel::default(),
        );
        let responder = w.add_node("responder", IcmpEchoResponder::new(nb), CpuModel::default());
        w.connect(
            pinger,
            PortId(0),
            responder,
            PortId(0),
            LinkSpec::new(1_000_000_000, SimDuration::from_micros(50)),
        );
        w.run_for(SimDuration::from_secs(2));
        let report = w.device::<Pinger>(pinger).unwrap().report();
        assert_eq!(report.transmitted, 50);
        assert_eq!(report.received, 50);
        // RTT = 2 × (50 µs prop + serialization); must be ≥ 100 µs.
        assert!(report.min.unwrap() >= SimDuration::from_micros(100));
        assert!(report.avg.unwrap() < SimDuration::from_millis(1));
        assert_eq!(
            w.device::<IcmpEchoResponder>(responder).unwrap().replied(),
            50
        );
    }

    #[test]
    fn unanswered_pings_are_counted_as_lost() {
        let (na, _) = nics();
        let mut w = World::new(9);
        let pinger = w.add_node(
            "pinger",
            Pinger::new(na, PingConfig::new(B).with_count(5)),
            CpuModel::default(),
        );
        // No responder wired: port 0 dangles.
        w.run_for(SimDuration::from_secs(1));
        let report = w.device::<Pinger>(pinger).unwrap().report();
        assert_eq!(report.transmitted, 5);
        assert_eq!(report.received, 0);
        assert_eq!(report.avg, None);
    }

    #[test]
    fn duplicate_replies_do_not_inflate_received() {
        // Pinger wired to a hub-ish duplicator is covered by combiner
        // integration tests; here simulate two identical replies by a
        // direct loop: responder + tap not needed — rely on answered-set
        // semantics via the report after a normal run.
        let (na, nb) = nics();
        let mut w = World::new(9);
        let pinger = w.add_node(
            "pinger",
            Pinger::new(na, PingConfig::new(B).with_count(1)),
            CpuModel::default(),
        );
        let responder = w.add_node("responder", IcmpEchoResponder::new(nb), CpuModel::default());
        w.connect(pinger, PortId(0), responder, PortId(0), LinkSpec::ideal());
        w.run_for(SimDuration::from_secs(1));
        assert_eq!(w.device::<Pinger>(pinger).unwrap().report().received, 1);
    }
}
