//! Constant-bit-rate UDP source and measuring sink (`iperf -u`).

use std::net::Ipv4Addr;

use netco_net::packet::{builder, L4View};
use netco_net::{Ctx, Device, Frame, HostNic, PortId};
use netco_sim::{SimDuration, SimTime};

use crate::common::{maybe_reply_echo, measurement_payload, parse_measurement, NIC_PORT};
use crate::meters::{JitterMeter, SeqTracker};

/// Configuration of a [`UdpSource`].
#[derive(Debug, Clone, PartialEq)]
pub struct UdpConfig {
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Destination UDP port.
    pub dst_port: u16,
    /// Source UDP port.
    pub src_port: u16,
    /// Offered rate in bits/s of UDP payload (the `iperf -b` number).
    pub rate_bps: u64,
    /// UDP payload length in bytes (≥ 12 for the measurement header;
    /// `iperf`'s default datagram is 1470 bytes).
    pub payload_len: usize,
    /// Delay before the first packet.
    pub start_after: SimDuration,
    /// Sending duration.
    pub duration: SimDuration,
    /// Minimum gap between datagrams: the per-`sendto` cost of a
    /// userspace UDP sender. This is what capped the paper's UDP numbers
    /// well below its TCP numbers (`iperf -u` pays a syscall per
    /// datagram; TCP amortizes via GSO). Set to zero for an ideal source.
    pub send_cost: SimDuration,
}

impl UdpConfig {
    /// An `iperf`-like default: 1470-byte datagrams for 10 s at 1 Mbit/s
    /// toward `dst_ip:5001`.
    pub fn new(dst_ip: Ipv4Addr) -> UdpConfig {
        UdpConfig {
            dst_ip,
            dst_port: 5001,
            src_port: 50000,
            rate_bps: 1_000_000,
            payload_len: 1470,
            start_after: SimDuration::ZERO,
            duration: SimDuration::from_secs(10),
            send_cost: SimDuration::from_micros(42),
        }
    }

    /// Builder: sets the per-datagram send cost (zero = ideal source).
    pub fn with_send_cost(mut self, cost: SimDuration) -> UdpConfig {
        self.send_cost = cost;
        self
    }

    /// Builder: sets the offered rate.
    pub fn with_rate(mut self, bps: u64) -> UdpConfig {
        self.rate_bps = bps;
        self
    }

    /// Builder: sets the payload length.
    pub fn with_payload_len(mut self, len: usize) -> UdpConfig {
        self.payload_len = len;
        self
    }

    /// Builder: sets the sending duration.
    pub fn with_duration(mut self, d: SimDuration) -> UdpConfig {
        self.duration = d;
        self
    }

    fn interval(&self) -> SimDuration {
        let bits = (self.payload_len.max(12) as u64) * 8;
        let paced =
            SimDuration::from_nanos(bits.saturating_mul(1_000_000_000) / self.rate_bps.max(1));
        paced.max(self.send_cost)
    }
}

/// The CBR sender.
#[derive(Debug)]
pub struct UdpSource {
    nic: HostNic,
    cfg: UdpConfig,
    seq: u32,
    sent: u64,
    stop_at: Option<SimTime>,
}

const SEND_TIMER: u64 = 1;

impl UdpSource {
    /// Creates a source on `nic`.
    pub fn new(nic: HostNic, cfg: UdpConfig) -> UdpSource {
        UdpSource {
            nic,
            cfg,
            seq: 0,
            sent: 0,
            stop_at: None,
        }
    }

    /// Datagrams sent.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl Device for UdpSource {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.stop_at = Some(ctx.now() + self.cfg.start_after + self.cfg.duration);
        ctx.schedule_timer(self.cfg.start_after, SEND_TIMER);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: PortId, frame: Frame) {
        if let Some(reply) = self.nic.handle_arp(&frame) {
            ctx.send_frame(NIC_PORT, reply);
            return;
        }
        // The source answers pings (hosts do) but ignores data.
        if let Some(view) = self.nic.deliver_shared(frame.bytes()) {
            if let (Some(ip), Ok(Some(l4))) = (view.ipv4().cloned(), view.l4()) {
                maybe_reply_echo(ctx, &self.nic, ip.src, &l4);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != SEND_TIMER {
            return;
        }
        let now = ctx.now();
        if self.stop_at.is_some_and(|t| now >= t) {
            return;
        }
        if let Some(dst_mac) = self.nic.resolve(self.cfg.dst_ip) {
            let payload = measurement_payload(self.seq, now, self.cfg.payload_len);
            let frame = builder::udp_frame(
                self.nic.mac,
                dst_mac,
                self.nic.ip,
                self.cfg.dst_ip,
                self.cfg.src_port,
                self.cfg.dst_port,
                payload,
                None,
            );
            ctx.send_frame(NIC_PORT, frame);
            self.seq = self.seq.wrapping_add(1);
            self.sent += 1;
        }
        ctx.schedule_timer(self.cfg.interval(), SEND_TIMER);
    }
}

/// What a [`UdpSink`] measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UdpReport {
    /// Unique datagrams received.
    pub received: u64,
    /// Datagrams presumed lost.
    pub lost: u64,
    /// Duplicate deliveries (interesting in the Dup scenarios).
    pub duplicates: u64,
    /// Loss fraction in `[0, 1]`.
    pub loss_fraction: f64,
    /// Goodput in bits/s of UDP payload, measured between the first and
    /// last arrival.
    pub goodput_bps: f64,
    /// RFC 3550 jitter.
    pub jitter: SimDuration,
}

/// The measuring receiver.
#[derive(Debug)]
pub struct UdpSink {
    nic: HostNic,
    listen_port: u16,
    tracker: SeqTracker,
    jitter: JitterMeter,
    payload_bytes: u64,
    first: Option<SimTime>,
    last: Option<SimTime>,
}

impl UdpSink {
    /// Creates a sink listening on `listen_port`.
    pub fn new(nic: HostNic, listen_port: u16) -> UdpSink {
        UdpSink {
            nic,
            listen_port,
            tracker: SeqTracker::new(),
            jitter: JitterMeter::new(),
            payload_bytes: 0,
            first: None,
            last: None,
        }
    }

    /// The measurement report so far.
    pub fn report(&self) -> UdpReport {
        let elapsed = match (self.first, self.last) {
            (Some(f), Some(l)) if l > f => (l - f).as_secs_f64(),
            _ => 0.0,
        };
        let goodput = if elapsed > 0.0 {
            self.payload_bytes as f64 * 8.0 / elapsed
        } else {
            0.0
        };
        UdpReport {
            received: self.tracker.received(),
            lost: self.tracker.lost(),
            duplicates: self.tracker.duplicates(),
            loss_fraction: self.tracker.loss_fraction(),
            goodput_bps: goodput,
            jitter: self.jitter.jitter(),
        }
    }
}

impl Device for UdpSink {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: PortId, frame: Frame) {
        if let Some(reply) = self.nic.handle_arp(&frame) {
            ctx.send_frame(NIC_PORT, reply);
            return;
        }
        let Some(view) = self.nic.deliver_shared(frame.bytes()) else {
            return;
        };
        let Some(ip) = view.ipv4().cloned() else {
            return;
        };
        match view.l4() {
            Ok(Some(L4View::Udp(udp))) if udp.dst_port == self.listen_port => {
                let now = ctx.now();
                if let Some((seq, sent_at)) = parse_measurement(&udp.payload) {
                    if self.tracker.record(seq) {
                        self.payload_bytes += udp.payload.len() as u64;
                        self.first.get_or_insert(now);
                        self.last = Some(now);
                        self.jitter.record(sent_at, now);
                    }
                }
            }
            Ok(Some(l4)) => {
                maybe_reply_echo(ctx, &self.nic, ip.src, &l4);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netco_net::{CpuModel, LinkSpec, MacAddr, NeighborTable, World};

    const SRC_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn nics() -> (HostNic, HostNic) {
        let table: NeighborTable = [(SRC_IP, MacAddr::local(1)), (DST_IP, MacAddr::local(2))]
            .into_iter()
            .collect();
        let mut a = HostNic::new(MacAddr::local(1), SRC_IP);
        a.neighbors = table.clone();
        let mut b = HostNic::new(MacAddr::local(2), DST_IP);
        b.neighbors = table;
        (a, b)
    }

    fn run(cfg: UdpConfig, link: LinkSpec, secs: u64) -> (UdpReport, u64) {
        let (na, nb) = nics();
        let mut w = World::new(42);
        let src = w.add_node("src", UdpSource::new(na, cfg), CpuModel::default());
        let dst = w.add_node("dst", UdpSink::new(nb, 5001), CpuModel::default());
        w.connect(src, PortId(0), dst, PortId(0), link);
        w.run_for(SimDuration::from_secs(secs));
        let report = w.device::<UdpSink>(dst).unwrap().report();
        let sent = w.device::<UdpSource>(src).unwrap().sent();
        (report, sent)
    }

    #[test]
    fn cbr_rate_is_respected() {
        let cfg = UdpConfig::new(DST_IP)
            .with_rate(1_000_000)
            .with_payload_len(1250)
            .with_duration(SimDuration::from_secs(2));
        // 1 Mbit/s at 10 kbit per datagram = 100 datagrams/s.
        let (report, sent) = run(cfg, LinkSpec::default(), 3);
        assert!((199..=201).contains(&sent), "sent {sent}");
        assert_eq!(report.received, sent);
        assert_eq!(report.lost, 0);
        assert!((report.goodput_bps - 1_000_000.0).abs() / 1_000_000.0 < 0.02);
    }

    #[test]
    fn overload_causes_loss() {
        // 10 Mbit/s offered into a 1 Mbit/s link with a shallow queue.
        let cfg = UdpConfig::new(DST_IP)
            .with_rate(10_000_000)
            .with_payload_len(1250)
            .with_duration(SimDuration::from_secs(1));
        let link = LinkSpec::new(1_000_000, SimDuration::from_micros(5)).with_queue_bytes(5_000);
        let (report, _) = run(cfg, link, 3);
        assert!(report.loss_fraction > 0.5, "loss {}", report.loss_fraction);
        assert!(report.goodput_bps < 1_100_000.0);
    }

    #[test]
    fn jitter_is_low_on_clean_link() {
        let cfg = UdpConfig::new(DST_IP)
            .with_rate(5_000_000)
            .with_duration(SimDuration::from_secs(1));
        let (report, _) = run(cfg, LinkSpec::default(), 2);
        assert!(
            report.jitter < SimDuration::from_micros(5),
            "{}",
            report.jitter
        );
    }

    #[test]
    fn source_answers_pings() {
        use crate::ping::{PingConfig, PingReport, Pinger};
        let (na, nb) = nics();
        let mut w = World::new(1);
        let src = w.add_node(
            "src",
            UdpSource::new(na, UdpConfig::new(DST_IP).with_duration(SimDuration::ZERO)),
            CpuModel::default(),
        );
        let pinger = w.add_node(
            "pinger",
            Pinger::new(nb, PingConfig::new(SRC_IP).with_count(3)),
            CpuModel::default(),
        );
        w.connect(src, PortId(0), pinger, PortId(0), LinkSpec::default());
        w.run_for(SimDuration::from_secs(5));
        let report: PingReport = w.device::<Pinger>(pinger).unwrap().report();
        assert_eq!(report.received, 3);
    }
}
