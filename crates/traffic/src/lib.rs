//! Traffic generation and measurement — the reproduction's `iperf`,
//! `ping` and their measurement plumbing.
//!
//! * [`UdpSource`] / [`UdpSink`] — constant-bit-rate UDP with sequence
//!   numbers and embedded send timestamps; the sink reports goodput, loss
//!   and RFC 3550 jitter exactly like `iperf -u`.
//! * [`TcpSender`] / [`TcpReceiver`] — TCP Reno over the real TCP/IPv4
//!   codec: slow start, congestion avoidance, fast retransmit/recovery and
//!   RTO with Karn's algorithm. The paper's TCP collapse under loss and
//!   duplication is an emergent property of this implementation.
//! * [`Pinger`] / [`IcmpEchoResponder`] — ICMP echo RTT measurement
//!   (min/avg/max/mdev like `ping`).
//! * [`max_rate_search`] — the `iperf -u -b`-ramping procedure the paper
//!   uses to find the highest rate with loss below 0.5 %.
//! * [`FlowSet`] / [`FlowSink`] — an open-loop traffic engine that holds
//!   millions of concurrent flows in one device: heavy-tailed sizes,
//!   Poisson arrivals, deterministic per-flow RNG streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
mod flowset;
mod iperf;
mod meters;
mod ping;
pub mod tcp;
mod udp;

pub use flowset::{FlowSet, FlowSetConfig, FlowSetStats, FlowSink, SizeDist};
pub use iperf::{max_rate_search, IperfConfig};
pub use meters::{JitterMeter, RttStats, SeqTracker};
pub use ping::{IcmpEchoResponder, PingConfig, PingReport, Pinger};
pub use tcp::{TcpConfig, TcpReceiver, TcpReport, TcpSender, TcpSenderStats};
pub use udp::{UdpConfig, UdpReport, UdpSink, UdpSource};
