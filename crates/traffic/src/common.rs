//! Shared helpers for traffic host devices.

use bytes::{BufMut, Bytes, BytesMut};
use netco_net::packet::{builder, IcmpMessage, IcmpType, L4View};
use netco_net::{Ctx, HostNic, PortId};
use netco_sim::SimTime;

/// The NIC port every single-homed traffic host uses.
pub(crate) const NIC_PORT: PortId = PortId(0);

/// Builds the measurement payload: `[u32 seq][u64 send_ns][zero padding]`,
/// padded to `len` (minimum 12 bytes).
pub(crate) fn measurement_payload(seq: u32, now: SimTime, len: usize) -> Bytes {
    let len = len.max(12);
    let mut buf = BytesMut::with_capacity(len);
    buf.put_u32(seq);
    buf.put_u64(now.as_nanos());
    buf.resize(len, 0);
    buf.freeze()
}

/// Parses a measurement payload back into `(seq, send_time)`.
pub(crate) fn parse_measurement(payload: &[u8]) -> Option<(u32, SimTime)> {
    if payload.len() < 12 {
        return None;
    }
    let seq = u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]);
    let mut ns = [0u8; 8];
    ns.copy_from_slice(&payload[4..12]);
    Some((seq, SimTime::from_nanos(u64::from_be_bytes(ns))))
}

/// Replies to an ICMP echo request contained in `l4`, if it is one.
/// Returns `true` when a reply was sent.
pub(crate) fn maybe_reply_echo(
    ctx: &mut Ctx<'_>,
    nic: &HostNic,
    src_ip: std::net::Ipv4Addr,
    l4: &L4View,
) -> bool {
    let L4View::Icmp(msg) = l4 else {
        return false;
    };
    if msg.icmp_type != IcmpType::EchoRequest {
        return false;
    }
    let Some(dst_mac) = nic.resolve(src_ip) else {
        return false;
    };
    let reply = IcmpMessage::reply_to(msg);
    let frame = builder::icmp_frame(nic.mac, dst_mac, nic.ip, src_ip, reply, None);
    ctx.send_frame(NIC_PORT, frame);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_payload_round_trip() {
        let t = SimTime::from_nanos(123_456_789);
        let p = measurement_payload(42, t, 100);
        assert_eq!(p.len(), 100);
        assert_eq!(parse_measurement(&p), Some((42, t)));
    }

    #[test]
    fn short_payload_is_padded_to_minimum() {
        let p = measurement_payload(1, SimTime::ZERO, 4);
        assert_eq!(p.len(), 12);
    }

    #[test]
    fn parse_rejects_short() {
        assert_eq!(parse_measurement(&[0; 11]), None);
    }
}
