//! The TCP receiver: in-order delivery, out-of-order buffering, ACK per
//! segment.

use std::collections::BTreeMap;

use bytes::Bytes;
use netco_net::packet::{builder, L4View, TcpFlags, TcpSegment};
use netco_net::{Ctx, Device, Frame, HostNic, PortId};
use netco_sim::{SimDuration, SimTime};

use super::seq::{seq_gt, seq_le};
use super::{TcpConfig, TcpReport};
use crate::common::NIC_PORT;

/// The `iperf` server side: acknowledges everything, measures goodput.
///
/// Every arriving segment triggers exactly one ACK carrying the current
/// `rcv_nxt` — so duplicated segments (Dup scenarios) and out-of-order
/// arrivals produce genuine duplicate ACKs at the sender.
#[derive(Debug)]
pub struct TcpReceiver {
    nic: HostNic,
    cfg: TcpConfig,
    rcv_nxt: u32,
    // Monotonic id stamped into outgoing ACKs' (otherwise unused) seq
    // field, standing in for RFC 7323 timestamps: lets the sender tell a
    // fresh ACK from a network-duplicated copy of an old one.
    ack_id: u32,
    // Out-of-order ranges: start -> end (exclusive), non-overlapping.
    ooo: BTreeMap<u32, u32>,
    // In-order segments since the last ACK (delayed-ACK state).
    unacked_segments: u8,
    // Rate limiting for duplicate-triggered ACKs (cf. Linux's
    // tcp_invalid_ratelimit): in the Dup scenarios every segment arrives
    // k times and an ACK per stale copy would k²-amplify the reverse
    // path.
    last_dup_ack: Option<SimTime>,
    // Receive-thread model: segments are processed serially at
    // `cfg.per_segment_proc` each; ACKs queue until processing completes.
    proc_busy_until: SimTime,
    pending_acks: std::collections::VecDeque<(std::net::Ipv4Addr, u16, bool)>,
    proc_dropping: bool,
    proc_dropped: u64,
    delivered: u64,
    duplicates: u64,
    ooo_count: u64,
    first: Option<SimTime>,
    last: Option<SimTime>,
}

impl TcpReceiver {
    /// Creates a receiver on `nic`, listening on `cfg.dst_port`.
    pub fn new(nic: HostNic, cfg: TcpConfig) -> TcpReceiver {
        TcpReceiver {
            nic,
            cfg,
            rcv_nxt: 0,
            ack_id: 0,
            ooo: BTreeMap::new(),
            unacked_segments: 0,
            last_dup_ack: None,
            proc_busy_until: SimTime::ZERO,
            pending_acks: std::collections::VecDeque::new(),
            proc_dropping: false,
            proc_dropped: 0,
            delivered: 0,
            duplicates: 0,
            ooo_count: 0,
            first: None,
            last: None,
        }
    }

    /// The measurement report so far.
    pub fn report(&self) -> TcpReport {
        let elapsed = match (self.first, self.last) {
            (Some(f), Some(l)) if l > f => (l - f).as_secs_f64(),
            _ => 0.0,
        };
        TcpReport {
            bytes_delivered: self.delivered,
            goodput_bps: if elapsed > 0.0 {
                self.delivered as f64 * 8.0 / elapsed
            } else {
                0.0
            },
            duplicate_segments: self.duplicates,
            out_of_order_segments: self.ooo_count,
        }
    }

    fn send_ack(
        &mut self,
        ctx: &mut Ctx<'_>,
        peer_ip: std::net::Ipv4Addr,
        peer_port: u16,
        duplicate_hint: bool,
    ) {
        let Some(dst_mac) = self.nic.resolve(peer_ip) else {
            return;
        };
        let mut flags = TcpFlags::ACK;
        if duplicate_hint {
            flags |= TcpFlags::URG; // DSACK stand-in, see TcpFlags::URG
        }
        self.ack_id = self.ack_id.wrapping_add(1);
        let ack = TcpSegment {
            src_port: self.cfg.dst_port,
            dst_port: peer_port,
            seq: self.ack_id,
            ack: self.rcv_nxt,
            flags,
            window: self.cfg.rcv_window,
            payload: Bytes::new(),
        };
        let frame = builder::tcp_frame(self.nic.mac, dst_mac, self.nic.ip, peer_ip, &ack, None);
        ctx.send_frame(NIC_PORT, frame);
    }

    /// Processes a data segment; returns `true` when the segment was a
    /// pure duplicate (already fully received), so the ACK it triggers
    /// carries the duplicate hint. Without that hint the Dup scenarios'
    /// k-fold segment copies would spuriously trigger fast retransmit on
    /// every window — the paper's DSACK-capable Linux endpoints did not
    /// suffer that (RFC 2883 §4).
    fn accept(&mut self, seg: &TcpSegment) -> bool {
        let seq = seg.seq;
        let end = seq.wrapping_add(seg.payload.len() as u32);
        if seg.payload.is_empty() {
            return false;
        }
        if seq_le(end, self.rcv_nxt) {
            self.duplicates += 1;
            return true;
        }
        if seq_gt(seq, self.rcv_nxt) {
            // Out of order: remember the range (merge naive — ranges from
            // a single sender are MSS-aligned and non-overlapping). A
            // repeat of a buffered range is also a pure duplicate.
            if self.ooo.insert(seq, end).is_some() {
                self.duplicates += 1;
                return true;
            }
            self.ooo_count += 1;
            return false;
        }
        // In-order (possibly partially duplicate) data.
        let advance = end.wrapping_sub(self.rcv_nxt);
        self.rcv_nxt = end;
        self.delivered += advance as u64;
        // Pull any now-contiguous out-of-order ranges.
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if seq_gt(s, self.rcv_nxt) {
                break;
            }
            self.ooo.pop_first();
            if seq_gt(e, self.rcv_nxt) {
                let adv = e.wrapping_sub(self.rcv_nxt);
                self.rcv_nxt = e;
                self.delivered += adv as u64;
            }
        }
        false
    }
}

impl Device for TcpReceiver {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: PortId, frame: Frame) {
        if let Some(reply) = self.nic.handle_arp(&frame) {
            ctx.send_frame(NIC_PORT, reply);
            return;
        }
        let Some(view) = self.nic.deliver_shared(frame.bytes()) else {
            return;
        };
        let Some(ip) = view.ipv4().cloned() else {
            return;
        };
        match view.l4() {
            Ok(Some(L4View::Tcp(seg))) if seg.dst_port == self.cfg.dst_port => {
                let now = ctx.now();
                self.first.get_or_insert(now);
                self.last = Some(now);
                // Every segment — useful or duplicate — occupies the
                // receive thread (paper: "buffering times at the
                // destination host"); a thread too far behind overflows
                // the socket buffer and the segment is lost.
                let backlog = self.proc_busy_until.saturating_since(now);
                if backlog > self.cfg.proc_backlog_limit {
                    self.proc_dropping = true;
                } else if backlog
                    <= self
                        .cfg
                        .proc_backlog_limit
                        .saturating_sub(self.cfg.per_segment_proc * 8)
                {
                    self.proc_dropping = false;
                }
                if self.proc_dropping {
                    self.proc_dropped += 1;
                    return;
                }
                let done = self.proc_busy_until.max(now) + self.cfg.per_segment_proc;
                self.proc_busy_until = done;
                let before = self.rcv_nxt;
                let had_ooo = !self.ooo.is_empty();
                let duplicate = self.accept(&seg);
                let advanced = self.rcv_nxt != before;
                // Delayed ACKs: in-order data is acknowledged every n-th
                // segment; anything unusual (duplicate, out-of-order,
                // gap-filling retransmission) is acknowledged immediately
                // (RFC 5681 §4.2).
                let emit = if advanced && !duplicate && !had_ooo {
                    self.unacked_segments += 1;
                    if self.unacked_segments >= self.cfg.delayed_ack.max(1) {
                        self.unacked_segments = 0;
                        Some(false)
                    } else {
                        None
                    }
                } else if duplicate {
                    // Rate-limit pure-duplicate ACKs to one per 100 µs; a
                    // genuinely retransmitted segment (≥ RTO later) still
                    // gets its ACK.
                    let due = self
                        .last_dup_ack
                        .is_none_or(|t| now.saturating_since(t) >= SimDuration::from_micros(100));
                    if due {
                        self.last_dup_ack = Some(now);
                        self.unacked_segments = 0;
                        Some(true)
                    } else {
                        None
                    }
                } else {
                    self.unacked_segments = 0;
                    Some(false)
                };
                if let Some(hint) = emit {
                    if done <= now {
                        self.send_ack(ctx, ip.src, seg.src_port, hint);
                    } else {
                        self.pending_acks.push_back((ip.src, seg.src_port, hint));
                        ctx.schedule_timer(done.saturating_since(now), 1);
                    }
                }
            }
            Ok(Some(l4)) => {
                crate::common::maybe_reply_echo(ctx, &self.nic, ip.src, &l4);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if let Some((ip, port, hint)) = self.pending_acks.pop_front() {
            self.send_ack(ctx, ip, port, hint);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netco_net::MacAddr;
    use std::net::Ipv4Addr;

    fn receiver() -> TcpReceiver {
        let nic = HostNic::new(MacAddr::local(2), Ipv4Addr::new(10, 0, 0, 2));
        TcpReceiver::new(nic, TcpConfig::new(Ipv4Addr::new(10, 0, 0, 2)))
    }

    fn seg(seq: u32, len: usize) -> TcpSegment {
        TcpSegment {
            src_port: 40000,
            dst_port: 5001,
            seq,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 65535,
            payload: Bytes::from(vec![0u8; len]),
        }
    }

    #[test]
    fn in_order_delivery_advances() {
        let mut r = receiver();
        r.accept(&seg(0, 100));
        r.accept(&seg(100, 100));
        assert_eq!(r.rcv_nxt, 200);
        assert_eq!(r.delivered, 200);
    }

    #[test]
    fn gap_buffers_then_merges() {
        let mut r = receiver();
        r.accept(&seg(100, 100)); // hole at 0..100
        assert_eq!(r.rcv_nxt, 0);
        assert_eq!(r.ooo_count, 1);
        r.accept(&seg(0, 100)); // fills the hole
        assert_eq!(r.rcv_nxt, 200);
        assert_eq!(r.delivered, 200);
        assert!(r.ooo.is_empty());
    }

    #[test]
    fn duplicates_are_counted_not_delivered() {
        let mut r = receiver();
        r.accept(&seg(0, 100));
        r.accept(&seg(0, 100));
        r.accept(&seg(0, 100));
        assert_eq!(r.delivered, 100);
        assert_eq!(r.duplicates, 2);
    }

    #[test]
    fn overlapping_retransmission_delivers_tail_once() {
        let mut r = receiver();
        r.accept(&seg(0, 100));
        r.accept(&seg(50, 100)); // overlaps 50 bytes, adds 50 new
        assert_eq!(r.rcv_nxt, 150);
        assert_eq!(r.delivered, 150);
    }

    #[test]
    fn multiple_ooo_ranges_merge_in_order() {
        let mut r = receiver();
        r.accept(&seg(200, 100));
        r.accept(&seg(100, 100));
        assert_eq!(r.rcv_nxt, 0);
        r.accept(&seg(0, 100));
        assert_eq!(r.rcv_nxt, 300);
        assert_eq!(r.delivered, 300);
    }

    #[test]
    fn empty_segments_do_nothing() {
        let mut r = receiver();
        r.accept(&seg(0, 0));
        assert_eq!(r.rcv_nxt, 0);
        assert_eq!(r.duplicates, 0);
    }
}
