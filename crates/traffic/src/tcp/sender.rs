//! The TCP Reno bulk sender.

use bytes::Bytes;
use netco_net::packet::{builder, L4View, TcpFlags, TcpSegment};
use netco_net::{Ctx, Device, Frame, HostNic, PortId};
use netco_sim::{SimDuration, SimTime};

use super::seq::{seq_ge, seq_gt};
use super::TcpConfig;
use crate::common::NIC_PORT;

const RTO_TIMER_BASE: u64 = 1_000;
const START_TIMER: u64 = 1;

/// Shared zero block for bulk payloads: slicing this static costs no
/// allocation or memset per segment (it lives in .bss). An MSS cannot exceed
/// `u16::MAX`, so any segment payload fits.
static ZERO_PAYLOAD: [u8; 65536] = [0u8; 65536];

pub(crate) fn zero_payload(len: usize) -> Bytes {
    Bytes::from_static(&ZERO_PAYLOAD[..len])
}

/// Congestion-control and reliability counters of a [`TcpSender`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TcpSenderStats {
    /// Data segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Fast retransmissions (3 duplicate ACKs).
    pub fast_retransmits: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Bytes acknowledged by the peer.
    pub bytes_acked: u64,
    /// Current congestion window in bytes (for post-run inspection).
    pub cwnd: f64,
    /// Current slow-start threshold in bytes.
    pub ssthresh: f64,
}

/// A bulk-transfer TCP Reno sender (the `iperf` client side).
///
/// Sends an unbounded zero-filled stream for the configured duration, then
/// stops emitting new data (outstanding data is still retransmitted until
/// acknowledged so the receiver's byte count converges).
#[derive(Debug)]
pub struct TcpSender {
    nic: HostNic,
    cfg: TcpConfig,
    started: bool,
    stop_at: SimTime,
    snd_una: u32,
    snd_nxt: u32,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    in_recovery: bool,
    recover: u32,
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    rtt_sample: Option<(u32, SimTime)>,
    seen_ack_ids: std::collections::HashSet<u32, netco_sim::fxhash::FxBuildHasher>,
    timer_gen: u64,
    stats: TcpSenderStats,
}

impl TcpSender {
    /// Creates a sender on `nic`.
    pub fn new(nic: HostNic, cfg: TcpConfig) -> TcpSender {
        let mss = cfg.mss as f64;
        let cwnd = mss * cfg.init_cwnd_segments as f64;
        let ssthresh = mss * cfg.init_ssthresh_segments.max(2) as f64;
        TcpSender {
            nic,
            cfg,
            started: false,
            stop_at: SimTime::MAX,
            snd_una: 0,
            snd_nxt: 0,
            cwnd,
            ssthresh,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: SimDuration::from_secs(1),
            rtt_sample: None,
            seen_ack_ids: std::collections::HashSet::default(),
            timer_gen: 0,
            stats: TcpSenderStats::default(),
        }
    }

    /// Counters (cwnd/ssthresh are refreshed on access).
    pub fn stats(&self) -> TcpSenderStats {
        let mut s = self.stats;
        s.cwnd = self.cwnd;
        s.ssthresh = self.ssthresh;
        s
    }

    fn mss(&self) -> u32 {
        self.cfg.mss as u32
    }

    fn flight(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }

    fn effective_window(&self) -> u32 {
        let scaled = (self.cfg.rcv_window as u32) << self.cfg.window_scale.min(14);
        (self.cwnd as u32).min(scaled)
    }

    fn send_segment(&mut self, ctx: &mut Ctx<'_>, seq: u32, len: usize) {
        let Some(dst_mac) = self.nic.resolve(self.cfg.dst_ip) else {
            return;
        };
        let segment = TcpSegment {
            src_port: self.cfg.src_port,
            dst_port: self.cfg.dst_port,
            seq,
            ack: 0,
            flags: TcpFlags::ACK,
            window: self.cfg.rcv_window,
            payload: zero_payload(len),
        };
        let frame = builder::tcp_frame(
            self.nic.mac,
            dst_mac,
            self.nic.ip,
            self.cfg.dst_ip,
            &segment,
            None,
        );
        ctx.send_frame(NIC_PORT, frame);
        self.stats.segments_sent += 1;
    }

    /// Emits as much new data as cwnd and the receiver window allow.
    fn try_send(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        if now >= self.stop_at {
            return;
        }
        let mss = self.mss();
        while self.flight().saturating_add(mss) <= self.effective_window() {
            let seq = self.snd_nxt;
            self.snd_nxt = self.snd_nxt.wrapping_add(mss);
            // Karn: sample only segments sent exactly once.
            if self.rtt_sample.is_none() {
                self.rtt_sample = Some((self.snd_nxt, now));
            }
            self.send_segment(ctx, seq, mss as usize);
        }
        self.arm_rto(ctx);
    }

    fn arm_rto(&mut self, ctx: &mut Ctx<'_>) {
        if self.flight() == 0 {
            return;
        }
        self.timer_gen += 1;
        ctx.schedule_timer(self.rto, RTO_TIMER_BASE + self.timer_gen);
    }

    fn update_rtt(&mut self, sample: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                let diff = if srtt > sample {
                    srtt - sample
                } else {
                    sample - srtt
                };
                // RFC 6298: rttvar = 3/4 rttvar + 1/4 |srtt - sample|
                self.rttvar = (self.rttvar * 3 + diff) / 4;
                // srtt = 7/8 srtt + 1/8 sample
                self.srtt = Some((srtt * 7 + sample) / 8);
            }
        }
        let rto = self.srtt.expect("set above") + self.rttvar * 4;
        self.rto = rto.max(self.cfg.min_rto);
    }

    /// Handles an ACK. `ack_id` is the receiver's per-ACK stamp (see the
    /// receiver's `ack_id`); `duplicate_hint` is the DSACK stand-in.
    fn on_ack(&mut self, ctx: &mut Ctx<'_>, ack: u32, ack_id: u32, duplicate_hint: bool) {
        // A bit-identical network copy of an ACK we already processed
        // (Dup scenarios duplicate ACKs in flight): ignore it entirely,
        // like a timestamp-capable stack would.
        if !self.seen_ack_ids.insert(ack_id) {
            return;
        }
        if self.seen_ack_ids.len() > 100_000 {
            self.seen_ack_ids.clear(); // ids are monotonic; stale set
        }
        let now = ctx.now();
        let mss = self.mss() as f64;
        if seq_gt(ack, self.snd_una) {
            let acked = ack.wrapping_sub(self.snd_una);
            self.snd_una = ack;
            // After a go-back-N reset, ACKs for old in-flight data can
            // overtake snd_nxt; sending resumes from the ACK point.
            if seq_gt(self.snd_una, self.snd_nxt) {
                self.snd_nxt = self.snd_una;
            }
            self.stats.bytes_acked += acked as u64;
            self.dup_acks = 0;
            // RTT sample (Karn's algorithm: only untouched samples).
            if let Some((end, sent_at)) = self.rtt_sample {
                if seq_ge(ack, end) {
                    self.update_rtt(now.saturating_since(sent_at));
                    self.rtt_sample = None;
                }
            }
            // New data acked: restart the retransmission timer (RFC 6298
            // 5.3) so in-progress recovery cannot be hit by a stale RTO.
            self.arm_rto(ctx);
            if self.in_recovery {
                if seq_ge(ack, self.recover) {
                    // Full recovery.
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh;
                } else {
                    // NewReno partial ACK: retransmit the next hole,
                    // deflate by the amount acked.
                    self.send_segment(ctx, self.snd_una, self.mss() as usize);
                    self.cwnd = (self.cwnd - acked as f64 + mss).max(mss);
                }
            } else if self.cwnd < self.ssthresh {
                // Slow start.
                self.cwnd += (acked as f64).min(mss);
            } else {
                // Congestion avoidance.
                self.cwnd += mss * mss / self.cwnd;
            }
            self.try_send(ctx);
        } else if ack == self.snd_una && self.flight() > 0 {
            if duplicate_hint {
                // The receiver got a duplicate copy of old data (DSACK):
                // not evidence of loss; do not count toward fast
                // retransmit.
                return;
            }
            self.dup_acks += 1;
            if self.in_recovery {
                // Inflate per dup ACK, but cap: unbounded Reno inflation
                // would keep the congested pipe full and starve the
                // retransmission itself (PRR-style moderation).
                self.cwnd = (self.cwnd + mss).min(self.ssthresh * 1.5);
                // If dup ACKs keep arriving without progress, the
                // retransmission itself likely died in the still-full
                // queue; retry before falling back to a full RTO.
                if self.dup_acks.is_multiple_of(16) {
                    self.send_segment(ctx, self.snd_una, self.mss() as usize);
                }
                self.try_send(ctx);
            } else if self.dup_acks == 3 {
                // Fast retransmit.
                self.stats.fast_retransmits += 1;
                self.ssthresh = (self.flight() as f64 / 2.0).max(2.0 * mss);
                self.send_segment(ctx, self.snd_una, self.mss() as usize);
                self.cwnd = self.ssthresh + 3.0 * mss;
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                self.rtt_sample = None; // retransmitted: sample invalid
            }
        }
    }
}

impl Device for TcpSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.schedule_timer(self.cfg.start_after, START_TIMER);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: PortId, frame: Frame) {
        if let Some(reply) = self.nic.handle_arp(&frame) {
            ctx.send_frame(NIC_PORT, reply);
            return;
        }
        let Some(view) = self.nic.deliver_shared(frame.bytes()) else {
            return;
        };
        if let Ok(Some(L4View::Tcp(seg))) = view.l4() {
            if seg.dst_port == self.cfg.src_port && seg.flags.contains(TcpFlags::ACK) {
                let duplicate_hint = seg.flags.contains(TcpFlags::URG);
                self.on_ack(ctx, seg.ack, seg.seq, duplicate_hint);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == START_TIMER {
            if !self.started {
                self.started = true;
                self.stop_at = ctx.now() + self.cfg.duration;
                self.try_send(ctx);
            }
            return;
        }
        // Retransmission timeout (only the newest armed timer counts).
        if token != RTO_TIMER_BASE + self.timer_gen || self.flight() == 0 {
            return;
        }
        let mss = self.mss() as f64;
        self.stats.timeouts += 1;
        self.ssthresh = (self.flight() as f64 / 2.0).max(2.0 * mss);
        self.cwnd = mss;
        self.dup_acks = 0;
        self.in_recovery = false;
        self.rtt_sample = None;
        self.rto = (self.rto * 2).min(SimDuration::from_secs(60));
        // Go-back-N: everything past snd_una is presumed lost and will be
        // resent as the window reopens (the receiver discards what it
        // already has). Without this, multiple holes after a burst loss
        // each cost a full RTO.
        self.send_segment(ctx, self.snd_una, self.mss() as usize);
        self.snd_nxt = self.snd_una.wrapping_add(self.mss());
        self.arm_rto(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::super::TcpReceiver;
    use super::*;
    use netco_net::{CpuModel, LinkSpec, MacAddr, NeighborTable, World};
    use std::net::Ipv4Addr;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn nics() -> (HostNic, HostNic) {
        let table: NeighborTable = [(A, MacAddr::local(1)), (B, MacAddr::local(2))]
            .into_iter()
            .collect();
        let mut a = HostNic::new(MacAddr::local(1), A);
        a.neighbors = table.clone();
        let mut b = HostNic::new(MacAddr::local(2), B);
        b.neighbors = table;
        (a, b)
    }

    fn run_transfer(link: LinkSpec, secs: u64) -> (super::super::TcpReport, TcpSenderStats) {
        let (na, nb) = nics();
        // Ideal (zero-cost) receive thread: these tests exercise the
        // protocol machinery, not the endpoint-cost model.
        let mut cfg = TcpConfig::new(B).with_duration(SimDuration::from_secs(secs));
        cfg.per_segment_proc = SimDuration::ZERO;
        let mut w = World::new(13);
        let snd = w.add_node("snd", TcpSender::new(na, cfg.clone()), CpuModel::default());
        let rcv = w.add_node("rcv", TcpReceiver::new(nb, cfg), CpuModel::default());
        w.connect(snd, PortId(0), rcv, PortId(0), link);
        w.run_for(SimDuration::from_secs(secs + 1));
        (
            w.device::<TcpReceiver>(rcv).unwrap().report(),
            w.device::<TcpSender>(snd).unwrap().stats(),
        )
    }

    #[test]
    fn bulk_transfer_fills_a_clean_gigabit_link() {
        let (report, stats) = run_transfer(
            LinkSpec::new(1_000_000_000, SimDuration::from_micros(50)),
            2,
        );
        // Should reach a large fraction of line rate.
        assert!(
            report.goodput_bps > 0.7e9,
            "goodput {:.1} Mbit/s",
            report.goodput_bps / 1e6
        );
        // At most the end-of-stream tail RTO (a delayed ACK may be
        // outstanding when the sender stops emitting new data).
        assert!(stats.timeouts <= 1, "timeouts {}", stats.timeouts);
        assert!(report.bytes_delivered > 100_000_000);
    }

    #[test]
    fn bottleneck_limits_throughput_without_collapse() {
        // 10 Mbit/s bottleneck with a reasonable queue: Reno sawtooth
        // should still average well above half the bottleneck.
        let link =
            LinkSpec::new(10_000_000, SimDuration::from_micros(500)).with_queue_bytes(32 * 1024);
        let (report, stats) = run_transfer(link, 5);
        let mbps = report.goodput_bps / 1e6;
        assert!(mbps > 6.0 && mbps <= 10.5, "goodput {mbps:.2} Mbit/s");
        assert!(stats.fast_retransmits > 0, "Reno should see loss events");
    }

    #[test]
    fn loss_triggers_fast_retransmit_not_timeout() {
        let link =
            LinkSpec::new(50_000_000, SimDuration::from_micros(100)).with_queue_bytes(20_000);
        let (_, stats) = run_transfer(link, 3);
        assert!(stats.fast_retransmits >= 1);
        // Fast retransmit should keep the pipeline alive; timeouts rare.
        assert!(
            stats.timeouts <= stats.fast_retransmits,
            "timeouts {} vs fr {}",
            stats.timeouts,
            stats.fast_retransmits
        );
    }

    #[test]
    fn everything_delivered_is_in_order_and_exact() {
        let (report, stats) =
            run_transfer(LinkSpec::new(100_000_000, SimDuration::from_micros(100)), 1);
        // The receiver's delivered byte count equals the sender's acked
        // count (no FIN, so compare directly).
        assert_eq!(report.bytes_delivered, stats.bytes_acked);
    }
}
