//! TCP Reno over the real TCP/IPv4 byte codec.
//!
//! The sender implements slow start, congestion avoidance, fast
//! retransmit/recovery (NewReno-style partial-ACK handling) and an RTO
//! with Karn's algorithm; the receiver delivers in order, buffers
//! out-of-order segments and emits an ACK per arriving segment (including
//! duplicate ACKs for old or out-of-order data).
//!
//! Connections are pre-established (no SYN/FIN handshake): the paper's
//! iperf measurements run over long-lived bulk connections where setup is
//! irrelevant, and skipping it keeps sequence bookkeeping transparent.
//! Sequence numbers start at 0 on both sides.
//!
//! The interesting emergent behaviour for NetCo: in the *Dup* scenarios
//! every data segment arrives `k` times, each extra copy triggering a
//! duplicate ACK; with the slight per-replica delay jitter, dup-ACK bursts
//! cross the fast-retransmit threshold and cause spurious retransmissions
//! and cwnd collapses — which is why the paper's *combined* (Central)
//! scenarios beat the *duplicate-only* ones for TCP but not for UDP.

mod receiver;
mod sender;
mod seq;

pub use receiver::TcpReceiver;
pub use sender::{TcpSender, TcpSenderStats};

use std::net::Ipv4Addr;

use netco_sim::SimDuration;

/// Configuration shared by a TCP sender/receiver pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpConfig {
    /// Destination (receiver) IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Destination TCP port.
    pub dst_port: u16,
    /// Source TCP port.
    pub src_port: u16,
    /// Maximum segment payload in bytes. The default of 1446 makes a
    /// 1500-byte wire frame with our 54-byte header stack.
    pub mss: usize,
    /// Initial congestion window in segments (RFC 6928's 10).
    pub init_cwnd_segments: u32,
    /// Initial slow-start threshold in segments — a stand-in for
    /// HyStart/route-cache behaviour; pure exponential slow start into a
    /// deep scaled window would overshoot shallow software queues by
    /// hundreds of segments and collapse into RTO.
    pub init_ssthresh_segments: u32,
    /// Receiver window advertised (bytes, ≤ 65535 on the wire).
    pub rcv_window: u16,
    /// Window-scale shift (RFC 7323), pre-negotiated on both sides: the
    /// effective window is `rcv_window << window_scale`. Without scaling a
    /// gigabit path with milliseconds of queueing is window-limited.
    pub window_scale: u8,
    /// Delayed-ACK factor (RFC 1122): acknowledge every n-th in-order
    /// segment (out-of-order and duplicate data is ACKed immediately).
    pub delayed_ack: u8,
    /// Per-segment TCP receive-path processing time at the destination
    /// (socket buffer handling + ACK generation — far costlier than a UDP
    /// sink). Every arriving segment, including duplicates, occupies the
    /// receive thread; ACKs are emitted when processing completes. This is
    /// the paper's "buffering times at the destination host": in the Dup
    /// scenarios the receiver burns `k×` this budget per useful segment,
    /// which is why combining wins for TCP (Fig. 4) even though it loses
    /// slightly for UDP (Fig. 5).
    pub per_segment_proc: SimDuration,
    /// Receive-thread backlog bound: when processing lags arrivals by more
    /// than this, further segments are dropped (socket-buffer overflow).
    pub proc_backlog_limit: SimDuration,
    /// Minimum retransmission timeout (Linux default 200 ms).
    pub min_rto: SimDuration,
    /// Delay before the first segment.
    pub start_after: SimDuration,
    /// Sending duration (bulk transfer until this elapses).
    pub duration: SimDuration,
}

impl TcpConfig {
    /// A 10-second bulk transfer toward `dst_ip:5001`.
    pub fn new(dst_ip: Ipv4Addr) -> TcpConfig {
        TcpConfig {
            dst_ip,
            dst_port: 5001,
            src_port: 40000,
            mss: 1446,
            init_cwnd_segments: 10,
            init_ssthresh_segments: 64,
            rcv_window: u16::MAX,
            window_scale: 2,
            delayed_ack: 2,
            per_segment_proc: SimDuration::from_micros(30),
            proc_backlog_limit: SimDuration::from_millis(4),
            min_rto: SimDuration::from_millis(200),
            start_after: SimDuration::ZERO,
            duration: SimDuration::from_secs(10),
        }
    }

    /// Builder: sets the transfer duration.
    pub fn with_duration(mut self, duration: SimDuration) -> TcpConfig {
        self.duration = duration;
        self
    }

    /// Builder: sets the segment payload size.
    pub fn with_mss(mut self, mss: usize) -> TcpConfig {
        assert!(mss > 0, "mss must be positive");
        self.mss = mss;
        self
    }
}

/// What a [`TcpReceiver`] measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpReport {
    /// Bytes delivered in order to the application.
    pub bytes_delivered: u64,
    /// Goodput in bits/s between first and last delivery.
    pub goodput_bps: f64,
    /// Segments that were duplicates or already-delivered data.
    pub duplicate_segments: u64,
    /// Segments buffered out of order at some point.
    pub out_of_order_segments: u64,
}
