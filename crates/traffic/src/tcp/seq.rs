//! Wrapping 32-bit sequence-number comparisons (RFC 793 style).

/// `a < b` in sequence space.
pub(crate) fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `a > b` in sequence space.
pub(crate) fn seq_gt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) > 0
}

/// `a ≥ b` in sequence space.
pub(crate) fn seq_ge(a: u32, b: u32) -> bool {
    !seq_lt(a, b)
}

/// `a ≤ b` in sequence space.
pub(crate) fn seq_le(a: u32, b: u32) -> bool {
    !seq_gt(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ordering() {
        assert!(seq_lt(1, 2));
        assert!(seq_gt(2, 1));
        assert!(seq_ge(2, 2));
        assert!(seq_le(2, 2));
    }

    #[test]
    fn wraparound_ordering() {
        let near_max = u32::MAX - 10;
        let wrapped = 10u32;
        assert!(seq_lt(near_max, wrapped));
        assert!(seq_gt(wrapped, near_max));
        assert!(seq_le(near_max, wrapped));
        assert!(seq_ge(wrapped, near_max));
    }
}
