//! The `iperf -u -b`-ramping procedure: find the highest offered rate
//! whose loss stays below a threshold.

/// Parameters for [`max_rate_search`].
#[derive(Debug, Clone, PartialEq)]
pub struct IperfConfig {
    /// Lowest rate probed (bits/s).
    pub min_rate_bps: u64,
    /// Highest rate probed (bits/s).
    pub max_rate_bps: u64,
    /// Acceptable loss fraction (the paper uses 0.5 %).
    pub loss_threshold: f64,
    /// Stop when the search bracket is narrower than this (bits/s).
    pub resolution_bps: u64,
}

impl Default for IperfConfig {
    fn default() -> Self {
        IperfConfig {
            min_rate_bps: 1_000_000,
            max_rate_bps: 1_000_000_000,
            loss_threshold: 0.005,
            resolution_bps: 5_000_000,
        }
    }
}

/// Binary-searches the highest rate in `[cfg.min_rate_bps,
/// cfg.max_rate_bps]` for which `trial(rate)` (returning the measured loss
/// fraction) stays at or below `cfg.loss_threshold`.
///
/// Returns the best passing rate, or `None` when even the minimum rate
/// loses too much. This mirrors the paper's methodology: "setting the
/// iperf -u flag and adjusting the -b flag value until a maximum is
/// reached".
pub fn max_rate_search(cfg: &IperfConfig, mut trial: impl FnMut(u64) -> f64) -> Option<u64> {
    let mut lo = cfg.min_rate_bps;
    let mut hi = cfg.max_rate_bps;
    if trial(lo) > cfg.loss_threshold {
        return None;
    }
    // If even the max passes, take it.
    if trial(hi) <= cfg.loss_threshold {
        return Some(hi);
    }
    while hi - lo > cfg.resolution_bps {
        let mid = lo + (hi - lo) / 2;
        if trial(mid) <= cfg.loss_threshold {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> IperfConfig {
        IperfConfig {
            min_rate_bps: 1_000_000,
            max_rate_bps: 1_000_000_000,
            loss_threshold: 0.005,
            resolution_bps: 1_000_000,
        }
    }

    #[test]
    fn finds_a_sharp_knee() {
        // Lossless below 400 Mbit/s, lossy above.
        let f = |rate: u64| if rate <= 400_000_000 { 0.0 } else { 0.5 };
        let best = max_rate_search(&cfg(), f).unwrap();
        assert!((399_000_000..=400_000_000).contains(&best), "{best}");
    }

    #[test]
    fn saturates_at_max_when_everything_passes() {
        let best = max_rate_search(&cfg(), |_| 0.0).unwrap();
        assert_eq!(best, 1_000_000_000);
    }

    #[test]
    fn returns_none_when_nothing_passes() {
        assert_eq!(max_rate_search(&cfg(), |_| 0.9), None);
    }

    #[test]
    fn gradual_loss_curve_lands_at_threshold_crossing() {
        // loss = rate / 1e9 * 1% → crosses 0.5% at 500 Mbit/s.
        let f = |rate: u64| (rate as f64 / 1e9) * 0.01;
        let best = max_rate_search(&cfg(), f).unwrap();
        assert!((498_000_000..=501_000_000).contains(&best), "found {best}");
    }

    #[test]
    fn trial_count_is_logarithmic() {
        let mut calls = 0;
        let f = |rate: u64| {
            let _ = rate;
            0.0
        };
        let mut counted = |r: u64| {
            calls += 1;
            f(r)
        };
        let _ = max_rate_search(&cfg(), &mut counted);
        assert!(calls <= 3, "fast exit when max passes; got {calls}");
    }
}
