//! Byte-accurate OpenFlow 1.0 wire codec.
//!
//! Messages are framed with the standard `ofp_header` (version `0x01`,
//! type, length, xid); matches use the 40-byte `ofp_match` with the OF 1.0
//! wildcards bitfield; actions use the type/length TLV layout. The codec
//! covers exactly the [`OfMessage`] subset — an unknown message type decodes
//! to [`WireError::UnsupportedType`] rather than being silently skipped.
//!
//! # Example
//!
//! ```
//! use netco_openflow::{wire, OfMessage};
//!
//! let wire_bytes = wire::encode(&OfMessage::Hello, 7);
//! let (msg, xid) = wire::decode(&wire_bytes)?;
//! assert_eq!(msg, OfMessage::Hello);
//! assert_eq!(xid, 7);
//! # Ok::<(), wire::WireError>(())
//! ```

use std::fmt;
use std::net::Ipv4Addr;

use bytes::{BufMut, Bytes, BytesMut};
use netco_net::MacAddr;

use crate::action::Action;
use crate::flow_match::FlowMatch;
use crate::flow_table::FlowRemovedReason;
use crate::messages::{FlowModCommand, OfMessage, PacketInReason, PortDesc};
use crate::ports::OfPort;
use netco_net::packet::OFP_VLAN_NONE;

/// The OpenFlow version byte this codec speaks.
pub const OFP_VERSION: u8 = 0x01;
/// Length of the fixed `ofp_header`.
pub const HEADER_LEN: usize = 8;
/// Length of the `ofp_match` structure.
pub const MATCH_LEN: usize = 40;
/// `buffer_id` wire value meaning "not buffered".
pub const NO_BUFFER: u32 = 0xffff_ffff;

const OFPT_HELLO: u8 = 0;
const OFPT_ERROR: u8 = 1;
const OFPT_ECHO_REQUEST: u8 = 2;
const OFPT_ECHO_REPLY: u8 = 3;
const OFPT_FEATURES_REQUEST: u8 = 5;
const OFPT_FEATURES_REPLY: u8 = 6;
const OFPT_PACKET_IN: u8 = 10;
const OFPT_FLOW_REMOVED: u8 = 11;
const OFPT_PACKET_OUT: u8 = 13;
const OFPT_FLOW_MOD: u8 = 14;
const OFPT_STATS_REQUEST: u8 = 16;
const OFPT_STATS_REPLY: u8 = 17;
const OFPT_BARRIER_REQUEST: u8 = 18;
const OFPT_BARRIER_REPLY: u8 = 19;

/// `ofp_stats_types`: per-flow statistics.
const OFPST_FLOW: u16 = 1;
/// Fixed part of `ofp_flow_stats` (before the action list).
const FLOW_STATS_LEN: usize = 88;

// ofp_flow_wildcards bits.
const OFPFW_IN_PORT: u32 = 1 << 0;
const OFPFW_DL_VLAN: u32 = 1 << 1;
const OFPFW_DL_SRC: u32 = 1 << 2;
const OFPFW_DL_DST: u32 = 1 << 3;
const OFPFW_DL_TYPE: u32 = 1 << 4;
const OFPFW_NW_PROTO: u32 = 1 << 5;
const OFPFW_TP_SRC: u32 = 1 << 6;
const OFPFW_TP_DST: u32 = 1 << 7;
const OFPFW_NW_SRC_SHIFT: u32 = 8;
const OFPFW_NW_DST_SHIFT: u32 = 14;
const OFPFW_DL_VLAN_PCP: u32 = 1 << 20;
const OFPFW_NW_TOS: u32 = 1 << 21;

const OFPFF_SEND_FLOW_REM: u16 = 1;

const PHY_PORT_LEN: usize = 48;

/// Error produced when decoding OpenFlow wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer shorter than the header or the header's claimed length.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// Header version is not OpenFlow 1.0.
    BadVersion(u8),
    /// The message type is outside this codec's subset.
    UnsupportedType(u8),
    /// A length field inside the message is inconsistent.
    Malformed(&'static str),
    /// An action type outside this codec's subset.
    UnsupportedAction(u16),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated openflow message ({got} bytes, need {needed})")
            }
            WireError::BadVersion(v) => write!(f, "unsupported openflow version {v:#04x}"),
            WireError::UnsupportedType(t) => write!(f, "unsupported message type {t}"),
            WireError::Malformed(what) => write!(f, "malformed message: {what}"),
            WireError::UnsupportedAction(t) => write!(f, "unsupported action type {t}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serializes a message with the given transaction id.
pub fn encode(msg: &OfMessage, xid: u32) -> Bytes {
    let mut buf = BytesMut::new();
    encode_into(msg, xid, &mut buf);
    buf.freeze()
}

/// Serializes a message with the given transaction id, appending to `buf`.
///
/// Avoids the intermediate body allocation of [`encode`]; callers that frame
/// OpenFlow inside another protocol can write everything into one buffer.
pub fn encode_into(msg: &OfMessage, xid: u32, buf: &mut BytesMut) {
    let start = buf.len();
    buf.put_u8(OFP_VERSION);
    buf.put_u8(0); // type, patched below
    buf.put_u16(0); // length, patched below
    buf.put_u32(xid);
    let msg_type = encode_body(msg, buf);
    buf[start + 1] = msg_type;
    let len = (buf.len() - start) as u16;
    buf[start + 2..start + 4].copy_from_slice(&len.to_be_bytes());
}

/// Parses one message; returns it with its transaction id.
///
/// # Errors
///
/// See [`WireError`].
pub fn decode(data: &[u8]) -> Result<(OfMessage, u32), WireError> {
    if data.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            got: data.len(),
        });
    }
    if data[0] != OFP_VERSION {
        return Err(WireError::BadVersion(data[0]));
    }
    let msg_type = data[1];
    let length = u16::from_be_bytes([data[2], data[3]]) as usize;
    if length < HEADER_LEN || length > data.len() {
        return Err(WireError::Truncated {
            needed: length.max(HEADER_LEN),
            got: data.len(),
        });
    }
    let xid = u32::from_be_bytes([data[4], data[5], data[6], data[7]]);
    let body = &data[HEADER_LEN..length];
    let msg = decode_body(msg_type, body, None)?;
    Ok((msg, xid))
}

/// Parses one message from a shared buffer, like [`decode`], but payload
/// fields (`PacketIn`/`PacketOut` data, echo/error payloads) become
/// zero-copy slices of `data` instead of fresh allocations. This is the hot
/// path for compare links, which carry every replicated copy of every data
/// frame.
///
/// # Errors
///
/// See [`WireError`].
pub fn decode_shared(data: &Bytes) -> Result<(OfMessage, u32), WireError> {
    if data.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            got: data.len(),
        });
    }
    if data[0] != OFP_VERSION {
        return Err(WireError::BadVersion(data[0]));
    }
    let msg_type = data[1];
    let length = u16::from_be_bytes([data[2], data[3]]) as usize;
    if length < HEADER_LEN || length > data.len() {
        return Err(WireError::Truncated {
            needed: length.max(HEADER_LEN),
            got: data.len(),
        });
    }
    let xid = u32::from_be_bytes([data[4], data[5], data[6], data[7]]);
    let body = &data[HEADER_LEN..length];
    let msg = decode_body(msg_type, body, Some((data, HEADER_LEN)))?;
    Ok((msg, xid))
}

fn encode_body(msg: &OfMessage, b: &mut BytesMut) -> u8 {
    match msg {
        OfMessage::Hello => OFPT_HELLO,
        OfMessage::EchoRequest(data) => {
            b.put_slice(data);
            OFPT_ECHO_REQUEST
        }
        OfMessage::EchoReply(data) => {
            b.put_slice(data);
            OFPT_ECHO_REPLY
        }
        OfMessage::FeaturesRequest => OFPT_FEATURES_REQUEST,
        OfMessage::FeaturesReply {
            datapath_id,
            n_buffers,
            n_tables,
            ports,
        } => {
            b.put_u64(*datapath_id);
            b.put_u32(*n_buffers);
            b.put_u8(*n_tables);
            b.put_slice(&[0; 3]);
            b.put_u32(0); // capabilities
            b.put_u32(0); // supported actions bitmap (informational)
            for p in ports {
                b.put_u16(p.port_no);
                b.put_slice(&p.hw_addr.octets());
                let mut name = [0u8; 16];
                let n = p.name.len().min(15);
                name[..n].copy_from_slice(&p.name.as_bytes()[..n]);
                b.put_slice(&name);
                b.put_slice(&[0; 24]); // config/state/curr/advertised/supported/peer
            }
            OFPT_FEATURES_REPLY
        }
        OfMessage::PacketIn {
            buffer_id,
            in_port,
            reason,
            data,
        } => {
            b.put_u32(buffer_id.unwrap_or(NO_BUFFER));
            b.put_u16(data.len() as u16);
            b.put_u16(*in_port);
            b.put_u8(match reason {
                PacketInReason::NoMatch => 0,
                PacketInReason::Action => 1,
            });
            b.put_u8(0);
            b.put_slice(data);
            OFPT_PACKET_IN
        }
        OfMessage::PacketOut {
            buffer_id,
            in_port,
            actions,
            data,
        } => {
            let acts = encode_actions(actions);
            b.put_u32(buffer_id.unwrap_or(NO_BUFFER));
            b.put_u16(*in_port);
            b.put_u16(acts.len() as u16);
            b.put_slice(&acts);
            b.put_slice(data);
            OFPT_PACKET_OUT
        }
        OfMessage::FlowMod {
            command,
            matcher,
            priority,
            idle_timeout_s,
            hard_timeout_s,
            cookie,
            notify_when_removed,
            actions,
            buffer_id,
        } => {
            encode_match(matcher, b);
            b.put_u64(*cookie);
            b.put_u16(match command {
                FlowModCommand::Add => 0,
                FlowModCommand::Modify => 1,
                FlowModCommand::ModifyStrict => 2,
                FlowModCommand::Delete => 3,
                FlowModCommand::DeleteStrict => 4,
            });
            b.put_u16(*idle_timeout_s);
            b.put_u16(*hard_timeout_s);
            b.put_u16(*priority);
            b.put_u32(buffer_id.unwrap_or(NO_BUFFER));
            b.put_u16(OfPort::None.to_u16()); // out_port filter (unused)
            b.put_u16(if *notify_when_removed {
                OFPFF_SEND_FLOW_REM
            } else {
                0
            });
            b.put_slice(&encode_actions(actions));
            OFPT_FLOW_MOD
        }
        OfMessage::FlowRemoved {
            matcher,
            cookie,
            priority,
            reason,
            packet_count,
            byte_count,
        } => {
            encode_match(matcher, b);
            b.put_u64(*cookie);
            b.put_u16(*priority);
            b.put_u8(match reason {
                FlowRemovedReason::IdleTimeout => 0,
                FlowRemovedReason::HardTimeout => 1,
                FlowRemovedReason::Delete => 2,
            });
            b.put_u8(0);
            b.put_u32(0); // duration_sec
            b.put_u32(0); // duration_nsec
            b.put_u16(0); // idle_timeout
            b.put_slice(&[0; 2]);
            b.put_u64(*packet_count);
            b.put_u64(*byte_count);
            OFPT_FLOW_REMOVED
        }
        OfMessage::FlowStatsRequest { matcher } => {
            b.put_u16(OFPST_FLOW);
            b.put_u16(0); // flags
            encode_match(matcher, b);
            b.put_u8(0xff); // table_id: all tables
            b.put_u8(0); // pad
            b.put_u16(OfPort::None.to_u16()); // out_port filter (unused)
            OFPT_STATS_REQUEST
        }
        OfMessage::FlowStatsReply { flows } => {
            b.put_u16(OFPST_FLOW);
            b.put_u16(0); // flags: no more replies
            for f in flows {
                let acts = encode_actions(&f.actions);
                b.put_u16((FLOW_STATS_LEN + acts.len()) as u16);
                b.put_u8(0); // table_id
                b.put_u8(0); // pad
                encode_match(&f.matcher, b);
                b.put_u32(0); // duration_sec
                b.put_u32(0); // duration_nsec
                b.put_u16(f.priority);
                b.put_u16(0); // idle_timeout
                b.put_u16(0); // hard_timeout
                b.put_slice(&[0; 6]);
                b.put_u64(f.cookie);
                b.put_u64(f.packet_count);
                b.put_u64(f.byte_count);
                b.put_slice(&acts);
            }
            OFPT_STATS_REPLY
        }
        OfMessage::BarrierRequest => OFPT_BARRIER_REQUEST,
        OfMessage::BarrierReply => OFPT_BARRIER_REPLY,
        OfMessage::Error {
            err_type,
            code,
            data,
        } => {
            b.put_u16(*err_type);
            b.put_u16(*code);
            b.put_slice(data);
            OFPT_ERROR
        }
    }
}

/// `raw` is `Some((buffer, body_offset))` when `body` is a view into a
/// shared buffer: payload fields are then sliced (refcounted) instead of
/// copied.
fn decode_body(
    msg_type: u8,
    body: &[u8],
    raw: Option<(&Bytes, usize)>,
) -> Result<OfMessage, WireError> {
    let payload = |range: std::ops::Range<usize>| -> Bytes {
        match raw {
            Some((buf, off)) => buf.slice(off + range.start..off + range.end),
            None => Bytes::copy_from_slice(&body[range]),
        }
    };
    fn need(body: &[u8], n: usize) -> Result<(), WireError> {
        if body.len() < n {
            Err(WireError::Truncated {
                needed: n,
                got: body.len(),
            })
        } else {
            Ok(())
        }
    }
    fn u16_at(b: &[u8], off: usize) -> u16 {
        u16::from_be_bytes([b[off], b[off + 1]])
    }
    fn u32_at(b: &[u8], off: usize) -> u32 {
        u32::from_be_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
    }
    fn u64_at(b: &[u8], off: usize) -> u64 {
        let mut v = [0u8; 8];
        v.copy_from_slice(&b[off..off + 8]);
        u64::from_be_bytes(v)
    }

    Ok(match msg_type {
        OFPT_HELLO => OfMessage::Hello,
        OFPT_ECHO_REQUEST => OfMessage::EchoRequest(payload(0..body.len())),
        OFPT_ECHO_REPLY => OfMessage::EchoReply(payload(0..body.len())),
        OFPT_FEATURES_REQUEST => OfMessage::FeaturesRequest,
        OFPT_FEATURES_REPLY => {
            need(body, 24)?;
            let ports_bytes = &body[24..];
            if !ports_bytes.len().is_multiple_of(PHY_PORT_LEN) {
                return Err(WireError::Malformed("features-reply port list length"));
            }
            let ports = ports_bytes
                .chunks_exact(PHY_PORT_LEN)
                .map(|c| {
                    let name_end = c[8..24].iter().position(|&b| b == 0).unwrap_or(16);
                    PortDesc {
                        port_no: u16::from_be_bytes([c[0], c[1]]),
                        hw_addr: MacAddr([c[2], c[3], c[4], c[5], c[6], c[7]]),
                        name: String::from_utf8_lossy(&c[8..8 + name_end]).into_owned(),
                    }
                })
                .collect();
            OfMessage::FeaturesReply {
                datapath_id: u64_at(body, 0),
                n_buffers: u32_at(body, 8),
                n_tables: body[12],
                ports,
            }
        }
        OFPT_PACKET_IN => {
            need(body, 10)?;
            let buffer_id = u32_at(body, 0);
            let total_len = u16_at(body, 4) as usize;
            let data = &body[10..];
            if total_len != data.len() {
                return Err(WireError::Malformed("packet-in total_len"));
            }
            OfMessage::PacketIn {
                buffer_id: (buffer_id != NO_BUFFER).then_some(buffer_id),
                in_port: u16_at(body, 6),
                reason: if body[8] == 0 {
                    PacketInReason::NoMatch
                } else {
                    PacketInReason::Action
                },
                data: payload(10..body.len()),
            }
        }
        OFPT_PACKET_OUT => {
            need(body, 8)?;
            let buffer_id = u32_at(body, 0);
            let actions_len = u16_at(body, 6) as usize;
            need(body, 8 + actions_len)?;
            let actions = decode_actions(&body[8..8 + actions_len])?;
            OfMessage::PacketOut {
                buffer_id: (buffer_id != NO_BUFFER).then_some(buffer_id),
                in_port: u16_at(body, 4),
                actions,
                data: payload(8 + actions_len..body.len()),
            }
        }
        OFPT_FLOW_MOD => {
            need(body, MATCH_LEN + 24)?;
            let matcher = decode_match(&body[..MATCH_LEN])?;
            let cookie = u64_at(body, MATCH_LEN);
            let command = match u16_at(body, MATCH_LEN + 8) {
                0 => FlowModCommand::Add,
                1 => FlowModCommand::Modify,
                2 => FlowModCommand::ModifyStrict,
                3 => FlowModCommand::Delete,
                4 => FlowModCommand::DeleteStrict,
                _ => return Err(WireError::Malformed("flow-mod command")),
            };
            let buffer_id = u32_at(body, MATCH_LEN + 16);
            OfMessage::FlowMod {
                command,
                matcher,
                priority: u16_at(body, MATCH_LEN + 14),
                idle_timeout_s: u16_at(body, MATCH_LEN + 10),
                hard_timeout_s: u16_at(body, MATCH_LEN + 12),
                cookie,
                notify_when_removed: u16_at(body, MATCH_LEN + 22) & OFPFF_SEND_FLOW_REM != 0,
                actions: decode_actions(&body[MATCH_LEN + 24..])?,
                buffer_id: (buffer_id != NO_BUFFER).then_some(buffer_id),
            }
        }
        OFPT_FLOW_REMOVED => {
            need(body, MATCH_LEN + 40)?;
            let matcher = decode_match(&body[..MATCH_LEN])?;
            OfMessage::FlowRemoved {
                matcher,
                cookie: u64_at(body, MATCH_LEN),
                priority: u16_at(body, MATCH_LEN + 8),
                reason: match body[MATCH_LEN + 10] {
                    0 => FlowRemovedReason::IdleTimeout,
                    1 => FlowRemovedReason::HardTimeout,
                    _ => FlowRemovedReason::Delete,
                },
                packet_count: u64_at(body, MATCH_LEN + 24),
                byte_count: u64_at(body, MATCH_LEN + 32),
            }
        }
        OFPT_STATS_REQUEST => {
            need(body, 4 + MATCH_LEN + 4)?;
            if u16_at(body, 0) != OFPST_FLOW {
                return Err(WireError::UnsupportedType(OFPT_STATS_REQUEST));
            }
            OfMessage::FlowStatsRequest {
                matcher: decode_match(&body[4..4 + MATCH_LEN])?,
            }
        }
        OFPT_STATS_REPLY => {
            need(body, 4)?;
            if u16_at(body, 0) != OFPST_FLOW {
                return Err(WireError::UnsupportedType(OFPT_STATS_REPLY));
            }
            let mut flows = Vec::new();
            let mut rest = &body[4..];
            while !rest.is_empty() {
                if rest.len() < FLOW_STATS_LEN {
                    return Err(WireError::Malformed("flow-stats entry length"));
                }
                let entry_len = u16::from_be_bytes([rest[0], rest[1]]) as usize;
                if entry_len < FLOW_STATS_LEN || entry_len > rest.len() {
                    return Err(WireError::Malformed("flow-stats entry length"));
                }
                let matcher = decode_match(&rest[4..4 + MATCH_LEN])?;
                flows.push(crate::messages::FlowStats {
                    matcher,
                    priority: u16::from_be_bytes([rest[52], rest[53]]),
                    cookie: u64_at(rest, 64),
                    packet_count: u64_at(rest, 72),
                    byte_count: u64_at(rest, 80),
                    actions: decode_actions(&rest[FLOW_STATS_LEN..entry_len])?,
                });
                rest = &rest[entry_len..];
            }
            OfMessage::FlowStatsReply { flows }
        }
        OFPT_BARRIER_REQUEST => OfMessage::BarrierRequest,
        OFPT_BARRIER_REPLY => OfMessage::BarrierReply,
        OFPT_ERROR => {
            need(body, 4)?;
            OfMessage::Error {
                err_type: u16_at(body, 0),
                code: u16_at(body, 2),
                data: payload(4..body.len()),
            }
        }
        other => return Err(WireError::UnsupportedType(other)),
    })
}

fn encode_match(m: &FlowMatch, b: &mut BytesMut) {
    let mut wildcards = 0u32;
    if m.in_port.is_none() {
        wildcards |= OFPFW_IN_PORT;
    }
    if m.dl_vlan.is_none() {
        wildcards |= OFPFW_DL_VLAN;
    }
    if m.dl_src.is_none() {
        wildcards |= OFPFW_DL_SRC;
    }
    if m.dl_dst.is_none() {
        wildcards |= OFPFW_DL_DST;
    }
    if m.dl_type.is_none() {
        wildcards |= OFPFW_DL_TYPE;
    }
    if m.nw_proto.is_none() {
        wildcards |= OFPFW_NW_PROTO;
    }
    if m.tp_src.is_none() {
        wildcards |= OFPFW_TP_SRC;
    }
    if m.tp_dst.is_none() {
        wildcards |= OFPFW_TP_DST;
    }
    if m.nw_src.is_none() {
        wildcards |= 32 << OFPFW_NW_SRC_SHIFT;
    }
    if m.nw_dst.is_none() {
        wildcards |= 32 << OFPFW_NW_DST_SHIFT;
    }
    if m.dl_vlan_pcp.is_none() {
        wildcards |= OFPFW_DL_VLAN_PCP;
    }
    if m.nw_tos.is_none() {
        wildcards |= OFPFW_NW_TOS;
    }
    b.put_u32(wildcards);
    b.put_u16(m.in_port.unwrap_or(0));
    b.put_slice(&m.dl_src.unwrap_or(MacAddr::ZERO).octets());
    b.put_slice(&m.dl_dst.unwrap_or(MacAddr::ZERO).octets());
    b.put_u16(m.dl_vlan.unwrap_or(OFP_VLAN_NONE));
    b.put_u8(m.dl_vlan_pcp.unwrap_or(0));
    b.put_u8(0); // pad
    b.put_u16(m.dl_type.unwrap_or(0));
    b.put_u8(m.nw_tos.unwrap_or(0));
    b.put_u8(m.nw_proto.unwrap_or(0));
    b.put_slice(&[0; 2]); // pad
    b.put_slice(&m.nw_src.unwrap_or(Ipv4Addr::UNSPECIFIED).octets());
    b.put_slice(&m.nw_dst.unwrap_or(Ipv4Addr::UNSPECIFIED).octets());
    b.put_u16(m.tp_src.unwrap_or(0));
    b.put_u16(m.tp_dst.unwrap_or(0));
}

fn decode_match(b: &[u8]) -> Result<FlowMatch, WireError> {
    if b.len() < MATCH_LEN {
        return Err(WireError::Truncated {
            needed: MATCH_LEN,
            got: b.len(),
        });
    }
    let w = u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
    let nw_src_wild = (w >> OFPFW_NW_SRC_SHIFT) & 0x3f;
    let nw_dst_wild = (w >> OFPFW_NW_DST_SHIFT) & 0x3f;
    let field = |bit: u32| w & bit == 0;
    Ok(FlowMatch {
        in_port: field(OFPFW_IN_PORT).then(|| u16::from_be_bytes([b[4], b[5]])),
        dl_src: field(OFPFW_DL_SRC).then(|| MacAddr([b[6], b[7], b[8], b[9], b[10], b[11]])),
        dl_dst: field(OFPFW_DL_DST).then(|| MacAddr([b[12], b[13], b[14], b[15], b[16], b[17]])),
        dl_vlan: field(OFPFW_DL_VLAN).then(|| u16::from_be_bytes([b[18], b[19]])),
        dl_vlan_pcp: field(OFPFW_DL_VLAN_PCP).then(|| b[20]),
        dl_type: field(OFPFW_DL_TYPE).then(|| u16::from_be_bytes([b[22], b[23]])),
        nw_tos: field(OFPFW_NW_TOS).then(|| b[24]),
        nw_proto: field(OFPFW_NW_PROTO).then(|| b[25]),
        nw_src: (nw_src_wild == 0).then(|| Ipv4Addr::new(b[28], b[29], b[30], b[31])),
        nw_dst: (nw_dst_wild == 0).then(|| Ipv4Addr::new(b[32], b[33], b[34], b[35])),
        tp_src: field(OFPFW_TP_SRC).then(|| u16::from_be_bytes([b[36], b[37]])),
        tp_dst: field(OFPFW_TP_DST).then(|| u16::from_be_bytes([b[38], b[39]])),
    })
}

/// Encodes a single action to its wire bytes (the canonicalizer's sort
/// key: a total, codec-defined order over actions).
pub(crate) fn encode_one_action(action: &Action) -> Bytes {
    encode_actions(std::slice::from_ref(action))
}

fn encode_actions(actions: &[Action]) -> Bytes {
    let mut b = BytesMut::new();
    for a in actions {
        match a {
            Action::Output(port) => {
                b.put_u16(0); // OFPAT_OUTPUT
                b.put_u16(8);
                b.put_u16(port.to_u16());
                b.put_u16(0xffff); // max_len for controller sends
            }
            Action::SetVlanVid(vid) => {
                b.put_u16(1); // OFPAT_SET_VLAN_VID
                b.put_u16(8);
                b.put_u16(*vid);
                b.put_slice(&[0; 2]);
            }
            Action::StripVlan => {
                b.put_u16(3); // OFPAT_STRIP_VLAN
                b.put_u16(8);
                b.put_slice(&[0; 4]);
            }
            Action::SetDlSrc(mac) => {
                b.put_u16(4); // OFPAT_SET_DL_SRC
                b.put_u16(16);
                b.put_slice(&mac.octets());
                b.put_slice(&[0; 6]);
            }
            Action::SetDlDst(mac) => {
                b.put_u16(5); // OFPAT_SET_DL_DST
                b.put_u16(16);
                b.put_slice(&mac.octets());
                b.put_slice(&[0; 6]);
            }
            Action::SetNwSrc(ip) => {
                b.put_u16(6); // OFPAT_SET_NW_SRC
                b.put_u16(8);
                b.put_slice(&ip.octets());
            }
            Action::SetNwDst(ip) => {
                b.put_u16(7); // OFPAT_SET_NW_DST
                b.put_u16(8);
                b.put_slice(&ip.octets());
            }
            Action::SetTpSrc(port) => {
                b.put_u16(9); // OFPAT_SET_TP_SRC
                b.put_u16(8);
                b.put_u16(*port);
                b.put_slice(&[0; 2]);
            }
            Action::SetTpDst(port) => {
                b.put_u16(10); // OFPAT_SET_TP_DST
                b.put_u16(8);
                b.put_u16(*port);
                b.put_slice(&[0; 2]);
            }
        }
    }
    b.freeze()
}

fn decode_actions(mut b: &[u8]) -> Result<Vec<Action>, WireError> {
    let mut actions = Vec::new();
    while !b.is_empty() {
        if b.len() < 4 {
            return Err(WireError::Malformed("action header"));
        }
        let t = u16::from_be_bytes([b[0], b[1]]);
        let len = u16::from_be_bytes([b[2], b[3]]) as usize;
        if len < 8 || !len.is_multiple_of(8) || len > b.len() {
            return Err(WireError::Malformed("action length"));
        }
        let body = &b[4..len];
        let action = match t {
            0 => Action::Output(OfPort::from_u16(u16::from_be_bytes([body[0], body[1]]))),
            1 => Action::SetVlanVid(u16::from_be_bytes([body[0], body[1]])),
            3 => Action::StripVlan,
            4 | 5 => {
                if body.len() < 6 {
                    return Err(WireError::Malformed("dl action length"));
                }
                let mac = MacAddr([body[0], body[1], body[2], body[3], body[4], body[5]]);
                if t == 4 {
                    Action::SetDlSrc(mac)
                } else {
                    Action::SetDlDst(mac)
                }
            }
            6 | 7 => {
                let ip = Ipv4Addr::new(body[0], body[1], body[2], body[3]);
                if t == 6 {
                    Action::SetNwSrc(ip)
                } else {
                    Action::SetNwDst(ip)
                }
            }
            9 => Action::SetTpSrc(u16::from_be_bytes([body[0], body[1]])),
            10 => Action::SetTpDst(u16::from_be_bytes([body[0], body[1]])),
            other => return Err(WireError::UnsupportedAction(other)),
        };
        actions.push(action);
        b = &b[len..];
    }
    Ok(actions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: OfMessage) {
        let wire = encode(&msg, 0x1234_5678);
        let (back, xid) = decode(&wire).expect("decode");
        assert_eq!(back, msg);
        assert_eq!(xid, 0x1234_5678);
        // Header sanity.
        assert_eq!(wire[0], OFP_VERSION);
        assert_eq!(u16::from_be_bytes([wire[2], wire[3]]) as usize, wire.len());
    }

    #[test]
    fn simple_messages() {
        round_trip(OfMessage::Hello);
        round_trip(OfMessage::FeaturesRequest);
        round_trip(OfMessage::BarrierRequest);
        round_trip(OfMessage::BarrierReply);
        round_trip(OfMessage::EchoRequest(Bytes::from_static(b"ping")));
        round_trip(OfMessage::EchoReply(Bytes::from_static(b"ping")));
        round_trip(OfMessage::Error {
            err_type: 1,
            code: 2,
            data: Bytes::from_static(b"bad message prefix"),
        });
    }

    #[test]
    fn features_reply_with_ports() {
        round_trip(OfMessage::FeaturesReply {
            datapath_id: 0xabcdef,
            n_buffers: 256,
            n_tables: 1,
            ports: vec![
                PortDesc {
                    port_no: 1,
                    hw_addr: MacAddr::local(1),
                    name: "eth1".to_string(),
                },
                PortDesc {
                    port_no: 2,
                    hw_addr: MacAddr::local(2),
                    name: "eth2".to_string(),
                },
            ],
        });
    }

    #[test]
    fn packet_in_round_trip() {
        round_trip(OfMessage::PacketIn {
            buffer_id: Some(42),
            in_port: 3,
            reason: PacketInReason::NoMatch,
            data: Bytes::from_static(b"frame bytes here"),
        });
        round_trip(OfMessage::PacketIn {
            buffer_id: None,
            in_port: 0,
            reason: PacketInReason::Action,
            data: Bytes::new(),
        });
    }

    #[test]
    fn packet_out_round_trip() {
        round_trip(OfMessage::PacketOut {
            buffer_id: None,
            in_port: OfPort::None.to_u16(),
            actions: vec![
                Action::Output(OfPort::Physical(2)),
                Action::Output(OfPort::Flood),
            ],
            data: Bytes::from_static(b"payload"),
        });
        round_trip(OfMessage::PacketOut {
            buffer_id: Some(7),
            in_port: 1,
            actions: vec![],
            data: Bytes::new(),
        });
    }

    #[test]
    fn flow_mod_round_trip() {
        round_trip(OfMessage::FlowMod {
            command: FlowModCommand::Add,
            matcher: FlowMatch::any()
                .with_in_port(1)
                .with_dl_dst(MacAddr::local(7))
                .with_dl_type(0x0800)
                .with_nw_dst(Ipv4Addr::new(10, 0, 0, 2))
                .with_tp_dst(80),
            priority: 1000,
            idle_timeout_s: 30,
            hard_timeout_s: 300,
            cookie: 0xfeed,
            notify_when_removed: true,
            actions: vec![
                Action::SetVlanVid(7),
                Action::SetDlSrc(MacAddr::local(1)),
                Action::SetDlDst(MacAddr::local(2)),
                Action::SetNwSrc(Ipv4Addr::new(1, 2, 3, 4)),
                Action::SetNwDst(Ipv4Addr::new(4, 3, 2, 1)),
                Action::SetTpSrc(1),
                Action::SetTpDst(2),
                Action::StripVlan,
                Action::Output(OfPort::Controller),
            ],
            buffer_id: Some(55),
        });
        round_trip(OfMessage::FlowMod {
            command: FlowModCommand::DeleteStrict,
            matcher: FlowMatch::any(),
            priority: 0,
            idle_timeout_s: 0,
            hard_timeout_s: 0,
            cookie: 0,
            notify_when_removed: false,
            actions: vec![],
            buffer_id: None,
        });
    }

    #[test]
    fn flow_removed_round_trip() {
        round_trip(OfMessage::FlowRemoved {
            matcher: FlowMatch::any().with_dl_dst(MacAddr::local(9)),
            cookie: 9,
            priority: 77,
            reason: FlowRemovedReason::IdleTimeout,
            packet_count: 1234,
            byte_count: 99999,
        });
    }

    #[test]
    fn flow_stats_round_trip() {
        round_trip(OfMessage::FlowStatsRequest {
            matcher: FlowMatch::any().with_dl_dst(MacAddr::local(4)),
        });
        round_trip(OfMessage::FlowStatsReply { flows: vec![] });
        round_trip(OfMessage::FlowStatsReply {
            flows: vec![
                crate::messages::FlowStats {
                    matcher: FlowMatch::any().with_dl_dst(MacAddr::local(1)),
                    priority: 100,
                    cookie: 0xabc,
                    packet_count: 1234,
                    byte_count: 99999,
                    actions: vec![Action::Output(OfPort::Physical(2))],
                },
                crate::messages::FlowStats {
                    matcher: FlowMatch::any(),
                    priority: 1,
                    cookie: 0,
                    packet_count: 0,
                    byte_count: 0,
                    actions: vec![],
                },
            ],
        });
    }

    #[test]
    fn rejects_bad_version() {
        let mut wire = encode(&OfMessage::Hello, 0).to_vec();
        wire[0] = 0x04;
        assert_eq!(decode(&wire), Err(WireError::BadVersion(0x04)));
    }

    #[test]
    fn rejects_truncation() {
        let wire = encode(&OfMessage::FeaturesRequest, 0);
        assert!(matches!(
            decode(&wire[..4]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_unknown_type() {
        let mut wire = encode(&OfMessage::Hello, 0).to_vec();
        wire[1] = 9; // OFPT_SET_CONFIG, outside the subset
        assert_eq!(decode(&wire), Err(WireError::UnsupportedType(9)));
    }

    #[test]
    fn rejects_garbage_actions() {
        let msg = OfMessage::PacketOut {
            buffer_id: None,
            in_port: 0,
            actions: vec![Action::Output(OfPort::Physical(1))],
            data: Bytes::new(),
        };
        let mut wire = encode(&msg, 0).to_vec();
        wire[HEADER_LEN + 8] = 0xff; // corrupt the action type
        wire[HEADER_LEN + 9] = 0xff;
        assert!(matches!(
            decode(&wire),
            Err(WireError::UnsupportedAction(0xffff))
        ));
    }

    #[test]
    fn match_wildcards_encode_correctly() {
        // Fully wildcarded match sets every wildcard bit we use.
        let mut b = BytesMut::new();
        encode_match(&FlowMatch::any(), &mut b);
        let m = decode_match(&b).unwrap();
        assert_eq!(m, FlowMatch::any());
        assert_eq!(b.len(), MATCH_LEN);
    }
}
