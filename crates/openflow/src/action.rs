//! OpenFlow 1.0 actions and their application to wire bytes.

use std::fmt;
use std::net::Ipv4Addr;

use bytes::Bytes;

use netco_net::packet::{
    EtherType, EthernetFrame, FrameView, IpProtocol, L3View, TcpSegment, UdpDatagram, VlanTag,
};
use netco_net::{Frame, MacAddr};

use crate::ports::OfPort;

/// An OpenFlow 1.0 action (the subset this reproduction uses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Forward to a port (`OFPAT_OUTPUT`).
    Output(OfPort),
    /// Rewrite the Ethernet source (`OFPAT_SET_DL_SRC`).
    SetDlSrc(MacAddr),
    /// Rewrite the Ethernet destination (`OFPAT_SET_DL_DST`).
    SetDlDst(MacAddr),
    /// Set (or add) the VLAN id (`OFPAT_SET_VLAN_VID`).
    SetVlanVid(u16),
    /// Remove the VLAN tag (`OFPAT_STRIP_VLAN`).
    StripVlan,
    /// Rewrite the IPv4 source (`OFPAT_SET_NW_SRC`); fixes checksums.
    SetNwSrc(Ipv4Addr),
    /// Rewrite the IPv4 destination (`OFPAT_SET_NW_DST`); fixes checksums.
    SetNwDst(Ipv4Addr),
    /// Rewrite the L4 source port (`OFPAT_SET_TP_SRC`); fixes checksums.
    SetTpSrc(u16),
    /// Rewrite the L4 destination port (`OFPAT_SET_TP_DST`); fixes checksums.
    SetTpDst(u16),
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Output(p) => write!(f, "output:{p}"),
            Action::SetDlSrc(m) => write!(f, "set_dl_src:{m}"),
            Action::SetDlDst(m) => write!(f, "set_dl_dst:{m}"),
            Action::SetVlanVid(v) => write!(f, "set_vlan_vid:{v}"),
            Action::StripVlan => write!(f, "strip_vlan"),
            Action::SetNwSrc(ip) => write!(f, "set_nw_src:{ip}"),
            Action::SetNwDst(ip) => write!(f, "set_nw_dst:{ip}"),
            Action::SetTpSrc(p) => write!(f, "set_tp_src:{p}"),
            Action::SetTpDst(p) => write!(f, "set_tp_dst:{p}"),
        }
    }
}

/// Applies an action list to a frame, OF-style: rewrites take effect in
/// order, and each `Output` emits the frame *as rewritten so far*.
///
/// Returns the `(port, frame)` pairs emitted by `Output` actions. An empty
/// action list (or one without any `Output`) therefore drops the packet,
/// exactly as in OpenFlow 1.0.
///
/// Rewrites that need a parseable layer (IPv4/L4 setters on a frame whose
/// recognized layers fail to decode) are skipped — a real ASIC would have
/// rewritten garbage; skipping keeps behaviour deterministic and
/// observable via the unchanged bytes.
pub fn apply_actions(frame: &Frame, actions: &[Action]) -> Vec<(OfPort, Frame)> {
    let mut current = frame.clone();
    let mut out = Vec::new();
    for action in actions {
        match action {
            Action::Output(port) => out.push((*port, current.clone())),
            other => {
                if let Some(rewritten) = rewrite(&current, other) {
                    // Rewritten bytes are new content: fresh memo.
                    current = Frame::new(rewritten);
                }
            }
        }
    }
    out
}

/// Applies only the rewrite (non-`Output`) actions in `actions` to a frame,
/// returning the final bytes. Rewrites that cannot apply (unparseable
/// layer) are skipped, exactly as in [`apply_actions`].
pub fn apply_rewrites(frame: &Bytes, actions: &[Action]) -> Bytes {
    let mut current = frame.clone();
    for action in actions {
        if matches!(action, Action::Output(_)) {
            continue;
        }
        if let Some(rewritten) = rewrite(&current, action) {
            current = rewritten;
        }
    }
    current
}

fn rewrite(wire: &[u8], action: &Action) -> Option<Bytes> {
    let mut eth = EthernetFrame::decode(wire).ok()?;
    match action {
        Action::SetDlSrc(mac) => {
            eth.src = *mac;
            return Some(eth.encode());
        }
        Action::SetDlDst(mac) => {
            eth.dst = *mac;
            return Some(eth.encode());
        }
        Action::SetVlanVid(vid) => {
            let mut tag = eth.vlan.unwrap_or(VlanTag::new(0));
            tag.vid = vid & 0x0fff;
            eth.vlan = Some(tag);
            return Some(eth.encode());
        }
        Action::StripVlan => {
            eth.vlan = None;
            return Some(eth.encode());
        }
        _ => {}
    }
    // The remaining actions need parseable IPv4 (and possibly L4).
    if eth.ethertype != EtherType::Ipv4 {
        return None;
    }
    let view = FrameView::parse(wire).ok()?;
    let mut ip = match view.l3 {
        L3View::Ipv4(p) => p,
        L3View::Opaque => return None,
    };
    match action {
        Action::SetNwSrc(addr) | Action::SetNwDst(addr) => {
            let (new_src, new_dst) = match action {
                Action::SetNwSrc(_) => (*addr, ip.dst),
                _ => (ip.src, *addr),
            };
            // L4 checksums cover the pseudo-header, so re-encode L4 too.
            ip.payload = reencode_l4(&ip.payload, ip.protocol, ip.src, ip.dst, new_src, new_dst)?;
            ip.src = new_src;
            ip.dst = new_dst;
        }
        Action::SetTpSrc(port) | Action::SetTpDst(port) => match ip.protocol {
            IpProtocol::Udp => {
                let mut udp = UdpDatagram::decode(&ip.payload, ip.src, ip.dst).ok()?;
                match action {
                    Action::SetTpSrc(_) => udp.src_port = *port,
                    _ => udp.dst_port = *port,
                }
                ip.payload = udp.encode(ip.src, ip.dst);
            }
            IpProtocol::Tcp => {
                let mut tcp = TcpSegment::decode(&ip.payload, ip.src, ip.dst).ok()?;
                match action {
                    Action::SetTpSrc(_) => tcp.src_port = *port,
                    _ => tcp.dst_port = *port,
                }
                ip.payload = tcp.encode(ip.src, ip.dst);
            }
            _ => return None,
        },
        _ => unreachable!("handled above"),
    }
    eth.payload = ip.encode();
    Some(eth.encode())
}

fn reencode_l4(
    l4: &Bytes,
    proto: IpProtocol,
    old_src: Ipv4Addr,
    old_dst: Ipv4Addr,
    new_src: Ipv4Addr,
    new_dst: Ipv4Addr,
) -> Option<Bytes> {
    match proto {
        IpProtocol::Udp => {
            let d = UdpDatagram::decode(l4, old_src, old_dst).ok()?;
            Some(d.encode(new_src, new_dst))
        }
        IpProtocol::Tcp => {
            let s = TcpSegment::decode(l4, old_src, old_dst).ok()?;
            Some(s.encode(new_src, new_dst))
        }
        // ICMP checksums do not cover the pseudo-header.
        _ => Some(l4.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netco_net::packet::{builder, L4View};

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);

    fn udp() -> Frame {
        builder::udp_frame(
            MacAddr::local(1),
            MacAddr::local(2),
            A,
            B,
            100,
            200,
            Bytes::from_static(b"payload"),
            None,
        )
        .into()
    }

    #[test]
    fn empty_actions_drop() {
        assert!(apply_actions(&udp(), &[]).is_empty());
    }

    #[test]
    fn output_passes_frame_through_unchanged() {
        let frame = udp();
        let out = apply_actions(&frame, &[Action::Output(OfPort::Physical(4))]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, OfPort::Physical(4));
        assert_eq!(out[0].1, frame);
    }

    #[test]
    fn rewrite_then_output_emits_rewritten() {
        let out = apply_actions(
            &udp(),
            &[
                Action::SetDlDst(MacAddr::local(9)),
                Action::Output(OfPort::Physical(1)),
            ],
        );
        let view = FrameView::parse(&out[0].1).unwrap();
        assert_eq!(view.eth.dst, MacAddr::local(9));
    }

    #[test]
    fn output_before_rewrite_emits_original() {
        let frame = udp();
        let out = apply_actions(
            &frame,
            &[
                Action::Output(OfPort::Physical(1)),
                Action::SetDlDst(MacAddr::local(9)),
                Action::Output(OfPort::Physical(2)),
            ],
        );
        assert_eq!(out[0].1, frame);
        assert_ne!(out[1].1, frame);
    }

    #[test]
    fn vlan_set_and_strip() {
        let out = apply_actions(
            &udp(),
            &[Action::SetVlanVid(77), Action::Output(OfPort::Physical(1))],
        );
        let v = FrameView::parse(&out[0].1).unwrap();
        assert_eq!(v.eth.vlan.unwrap().vid, 77);
        // And the L4 checksum still verifies (VLAN does not affect it).
        assert!(matches!(v.l4().unwrap(), Some(L4View::Udp(_))));

        let out2 = apply_actions(
            &out[0].1,
            &[Action::StripVlan, Action::Output(OfPort::Physical(1))],
        );
        let v2 = FrameView::parse(&out2[0].1).unwrap();
        assert!(v2.eth.vlan.is_none());
    }

    #[test]
    fn nw_rewrite_fixes_all_checksums() {
        let out = apply_actions(
            &udp(),
            &[Action::SetNwDst(C), Action::Output(OfPort::Physical(1))],
        );
        let v = FrameView::parse(&out[0].1).expect("ip checksum must verify");
        assert_eq!(v.ipv4().unwrap().dst, C);
        match v.l4().expect("udp checksum must verify").unwrap() {
            L4View::Udp(u) => assert_eq!(u.payload, Bytes::from_static(b"payload")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tp_rewrite_udp_and_tcp() {
        let out = apply_actions(
            &udp(),
            &[Action::SetTpDst(999), Action::Output(OfPort::Physical(1))],
        );
        let v = FrameView::parse(&out[0].1).unwrap();
        match v.l4().unwrap().unwrap() {
            L4View::Udp(u) => assert_eq!(u.dst_port, 999),
            other => panic!("unexpected {other:?}"),
        }

        use netco_net::packet::TcpFlags;
        let seg = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 10,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 1000,
            payload: Bytes::from_static(b"t"),
        };
        let tcp_frame = Frame::from(builder::tcp_frame(
            MacAddr::local(1),
            MacAddr::local(2),
            A,
            B,
            &seg,
            None,
        ));
        let out = apply_actions(
            &tcp_frame,
            &[Action::SetTpSrc(4242), Action::Output(OfPort::Physical(1))],
        );
        let v = FrameView::parse(&out[0].1).unwrap();
        match v.l4().unwrap().unwrap() {
            L4View::Tcp(t) => assert_eq!(t.src_port, 4242),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn l3_rewrite_on_non_ip_is_skipped() {
        let eth = Frame::from(
            EthernetFrame {
                dst: MacAddr::local(1),
                src: MacAddr::local(2),
                vlan: None,
                ethertype: EtherType::Other(0x1234),
                payload: Bytes::from_static(b"opaque"),
            }
            .encode(),
        );
        let out = apply_actions(
            &eth,
            &[Action::SetNwDst(C), Action::Output(OfPort::Physical(1))],
        );
        assert_eq!(out[0].1, eth, "frame must pass through unchanged");
    }

    #[test]
    fn multiple_outputs_duplicate() {
        let out = apply_actions(
            &udp(),
            &[
                Action::Output(OfPort::Physical(1)),
                Action::Output(OfPort::Physical(2)),
                Action::Output(OfPort::Physical(3)),
            ],
        );
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|(_, f)| *f == out[0].1));
    }
}
