//! OpenFlow 1.0 controller–switch messages (structured form).
//!
//! The byte-level encoding lives in [`crate::wire`]; these types are what
//! switch and controller logic operate on.

use bytes::Bytes;
use netco_net::MacAddr;

use crate::action::Action;
use crate::flow_match::FlowMatch;
use crate::flow_table::FlowRemovedReason;
use crate::ports::OfPort;

/// Why a packet-in was sent to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketInReason {
    /// No flow entry matched (`OFPR_NO_MATCH`).
    NoMatch,
    /// An explicit output-to-controller action (`OFPR_ACTION`).
    Action,
}

/// The flow-mod command (`ofp_flow_mod_command`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowModCommand {
    /// Install a new entry.
    Add,
    /// Modify actions of matching entries (loose).
    Modify,
    /// Modify actions of the strictly matching entry.
    ModifyStrict,
    /// Delete matching entries (loose).
    Delete,
    /// Delete the strictly matching entry.
    DeleteStrict,
}

/// One flow's statistics in a [`OfMessage::FlowStatsReply`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlowStats {
    /// The entry's match.
    pub matcher: FlowMatch,
    /// The entry's priority.
    pub priority: u16,
    /// The entry's cookie.
    pub cookie: u64,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
    /// The entry's actions.
    pub actions: Vec<Action>,
}

/// A description of one physical port in a features reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortDesc {
    /// Port number.
    pub port_no: u16,
    /// Port hardware address.
    pub hw_addr: MacAddr,
    /// Interface name (at most 15 bytes are preserved on the wire).
    pub name: String,
}

/// An OpenFlow 1.0 message (the subset used by this reproduction).
#[derive(Debug, Clone, PartialEq)]
pub enum OfMessage {
    /// Version negotiation greeting.
    Hello,
    /// Liveness probe.
    EchoRequest(Bytes),
    /// Liveness response (echoes the request payload).
    EchoReply(Bytes),
    /// Controller asks for datapath features.
    FeaturesRequest,
    /// Switch describes itself.
    FeaturesReply {
        /// Datapath id (unique per switch).
        datapath_id: u64,
        /// Number of packets the switch can buffer for packet-in.
        n_buffers: u32,
        /// Number of flow tables (always 1 here).
        n_tables: u8,
        /// Physical ports.
        ports: Vec<PortDesc>,
    },
    /// A packet is forwarded to the controller.
    PacketIn {
        /// Switch buffer holding the full packet, if buffered.
        buffer_id: Option<u32>,
        /// Port the packet arrived on.
        in_port: u16,
        /// Why it was sent.
        reason: PacketInReason,
        /// Packet bytes (possibly truncated to `miss_send_len`).
        data: Bytes,
    },
    /// Controller tells the switch to emit a packet.
    PacketOut {
        /// Buffered packet to release, or `None` to use `data`.
        buffer_id: Option<u32>,
        /// The port the packet "arrived" on (for `OFPP_IN_PORT`).
        in_port: u16,
        /// Actions to apply (usually a single output).
        actions: Vec<Action>,
        /// Raw packet when not using a buffer.
        data: Bytes,
    },
    /// Controller modifies the flow table.
    FlowMod {
        /// What to do.
        command: FlowModCommand,
        /// Entries affected.
        matcher: FlowMatch,
        /// Entry priority.
        priority: u16,
        /// Idle timeout in seconds (0 = none).
        idle_timeout_s: u16,
        /// Hard timeout in seconds (0 = none).
        hard_timeout_s: u16,
        /// Opaque controller cookie.
        cookie: u64,
        /// Send a flow-removed message on expiry.
        notify_when_removed: bool,
        /// Actions for add/modify.
        actions: Vec<Action>,
        /// Buffered packet to run through the new entry, if any.
        buffer_id: Option<u32>,
    },
    /// Switch notifies the controller that an entry was removed.
    FlowRemoved {
        /// The entry's match.
        matcher: FlowMatch,
        /// The entry's cookie.
        cookie: u64,
        /// The entry's priority.
        priority: u16,
        /// Why it was removed.
        reason: FlowRemovedReason,
        /// Packets the entry matched over its lifetime.
        packet_count: u64,
        /// Bytes the entry matched over its lifetime.
        byte_count: u64,
    },
    /// Controller requests per-flow statistics (`OFPST_FLOW`) for entries
    /// subsumed by `matcher` — how the paper monitors "the flow table
    /// counters of all switches" (§VI).
    FlowStatsRequest {
        /// Filter: entries loosely matched by this are reported.
        matcher: FlowMatch,
    },
    /// Per-flow statistics.
    FlowStatsReply {
        /// One entry per reported flow.
        flows: Vec<FlowStats>,
    },
    /// Barrier request (fence).
    BarrierRequest,
    /// Barrier reply.
    BarrierReply,
    /// Error report.
    Error {
        /// `ofp_error_type`.
        err_type: u16,
        /// Error code within the type.
        code: u16,
        /// At least 64 bytes of the offending message.
        data: Bytes,
    },
}

impl OfMessage {
    /// Convenience: a flow-mod that adds `entry`-shaped state.
    pub fn add_flow(priority: u16, matcher: FlowMatch, actions: Vec<Action>) -> OfMessage {
        OfMessage::FlowMod {
            command: FlowModCommand::Add,
            matcher,
            priority,
            idle_timeout_s: 0,
            hard_timeout_s: 0,
            cookie: 0,
            notify_when_removed: false,
            actions,
            buffer_id: None,
        }
    }

    /// Convenience: a packet-out sending `data` to one port.
    pub fn packet_out(data: Bytes, port: OfPort) -> OfMessage {
        OfMessage::PacketOut {
            buffer_id: None,
            in_port: OfPort::None.to_u16(),
            actions: vec![Action::Output(port)],
            data,
        }
    }
}
