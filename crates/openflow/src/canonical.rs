//! Canonical wire forms for control-plane voting.
//!
//! The Byzantine-resilient control plane (see `netco_core::ControlVoter`)
//! replicates the controller k ways and majority-votes the flow-mods and
//! packet-outs the replicas emit. Honest replicas compute identical
//! *decisions*, but their wire bytes legitimately differ in fields that
//! carry no forwarding semantics:
//!
//! * the transaction id (`xid`) — a per-connection counter that drifts the
//!   moment one replica ever sent a different number of messages,
//! * the buffer id — a per-switch buffer handle no voted message may rely
//!   on (the voter always relays full packet data),
//! * the action-list order, for action lists whose effect is
//!   order-insensitive in our deployments (a single output, or the empty
//!   drop list).
//!
//! [`canonicalize`] projects a votable message onto a canonical wire form:
//! xid forced to 0, `buffer_id` forced to `NO_BUFFER`, actions sorted by
//! their encoded bytes. Two replicas agree exactly when their canonical
//! bytes are bit-identical, so the canonical form both *keys* the vote
//! (via `fp128` over the canonical bytes) and *is* the released artifact.
//!
//! Note the deliberate trade: sorting makes the key stable under
//! permutation, which re-admits a once-diverged-but-now-honest replica
//! whose emission order differs cosmetically. Action lists where order
//! changes semantics (rewrite-then-output vs output-then-rewrite) would
//! canonicalize to the same key; every controller app in this repo emits
//! single-action or empty lists, where the projection is lossless.

use bytes::Bytes;

use crate::messages::OfMessage;
use crate::wire;

/// What [`canonicalize`] saw in a controller-emitted message.
#[derive(Debug, Clone, PartialEq)]
pub enum Canonical {
    /// A votable output (flow-mod or packet-out) in canonical wire form.
    Votable(Bytes),
    /// A well-formed message that is not voted on (handshake, liveness,
    /// stats plumbing); the decoded message and original xid are returned
    /// so the caller can answer or relay it.
    Opaque(Box<OfMessage>, u32),
    /// Bytes that do not decode as OpenFlow 1.0.
    Invalid,
}

/// Decodes `bytes` and, for votable messages, re-encodes them canonically.
pub fn canonicalize(bytes: &Bytes) -> Canonical {
    let Ok((msg, xid)) = wire::decode_shared(bytes) else {
        return Canonical::Invalid;
    };
    match msg {
        OfMessage::FlowMod { .. } | OfMessage::PacketOut { .. } => {
            Canonical::Votable(canonical_bytes(msg))
        }
        other => Canonical::Opaque(Box::new(other), xid),
    }
}

/// Re-encodes a votable message in canonical form (xid 0, no buffer id,
/// actions sorted by encoded bytes). Non-votable messages are encoded
/// with xid 0 but otherwise untouched.
pub fn canonical_bytes(msg: OfMessage) -> Bytes {
    let msg = match msg {
        OfMessage::FlowMod {
            command,
            matcher,
            priority,
            idle_timeout_s,
            hard_timeout_s,
            cookie,
            notify_when_removed,
            mut actions,
            buffer_id: _,
        } => {
            sort_actions(&mut actions);
            OfMessage::FlowMod {
                command,
                matcher,
                priority,
                idle_timeout_s,
                hard_timeout_s,
                cookie,
                notify_when_removed,
                actions,
                buffer_id: None,
            }
        }
        OfMessage::PacketOut {
            buffer_id: _,
            in_port,
            mut actions,
            data,
        } => {
            sort_actions(&mut actions);
            OfMessage::PacketOut {
                buffer_id: None,
                in_port,
                actions,
                data,
            }
        }
        other => other,
    };
    wire::encode(&msg, 0)
}

/// Sorts an action list by each action's encoded wire bytes — a total,
/// codec-defined order with no reliance on `Action`'s in-memory layout.
fn sort_actions(actions: &mut [crate::Action]) {
    if actions.len() > 1 {
        actions.sort_by_cached_key(wire::encode_one_action);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Action, FlowMatch, FlowModCommand, OfPort, PacketInReason};

    fn flow_mod(actions: Vec<Action>, buffer_id: Option<u32>) -> OfMessage {
        OfMessage::FlowMod {
            command: FlowModCommand::Add,
            matcher: FlowMatch::any().with_in_port(3),
            priority: 10,
            idle_timeout_s: 0,
            hard_timeout_s: 5,
            cookie: 7,
            notify_when_removed: false,
            actions,
            buffer_id,
        }
    }

    #[test]
    fn xid_buffer_and_action_order_normalize_away() {
        let a = Action::Output(OfPort::Physical(1));
        let b = Action::SetVlanVid(9);
        let x = wire::encode(&flow_mod(vec![a.clone(), b.clone()], Some(4)), 17);
        let y = wire::encode(&flow_mod(vec![b, a], None), 9000);
        let (cx, cy) = (canonicalize(&x), canonicalize(&y));
        assert_eq!(cx, cy);
        assert!(matches!(cx, Canonical::Votable(_)));
    }

    #[test]
    fn canonical_form_is_a_fixpoint_and_stays_decodable() {
        let msg = flow_mod(
            vec![
                Action::SetVlanVid(2),
                Action::Output(OfPort::Physical(1)),
                Action::StripVlan,
            ],
            Some(99),
        );
        let Canonical::Votable(c1) = canonicalize(&wire::encode(&msg, 5)) else {
            panic!("flow-mod must be votable");
        };
        let Canonical::Votable(c2) = canonicalize(&c1) else {
            panic!("canonical bytes must stay votable");
        };
        assert_eq!(c1, c2, "canonicalization must be idempotent");
        let (decoded, xid) = wire::decode(&c1).unwrap();
        assert_eq!(xid, 0);
        assert!(matches!(
            decoded,
            OfMessage::FlowMod {
                buffer_id: None,
                ..
            }
        ));
    }

    #[test]
    fn different_decisions_stay_distinct() {
        let x = wire::encode(&flow_mod(vec![], None), 1);
        let mut other = flow_mod(vec![], None);
        if let OfMessage::FlowMod { priority, .. } = &mut other {
            *priority = 11;
        }
        let y = wire::encode(&other, 1);
        assert_ne!(canonicalize(&x), canonicalize(&y));
    }

    #[test]
    fn non_votable_messages_are_opaque_with_xid() {
        let bytes = wire::encode(&OfMessage::FeaturesRequest, 42);
        match canonicalize(&bytes) {
            Canonical::Opaque(msg, xid) => {
                assert_eq!(*msg, OfMessage::FeaturesRequest);
                assert_eq!(xid, 42);
            }
            other => panic!("unexpected {other:?}"),
        }
        let pi = wire::encode(
            &OfMessage::PacketIn {
                buffer_id: None,
                in_port: 1,
                reason: PacketInReason::NoMatch,
                data: Bytes::from_static(b"pkt"),
            },
            3,
        );
        assert!(matches!(canonicalize(&pi), Canonical::Opaque(..)));
    }

    #[test]
    fn garbage_is_invalid() {
        assert_eq!(
            canonicalize(&Bytes::from_static(b"nonsense")),
            Canonical::Invalid
        );
    }
}
