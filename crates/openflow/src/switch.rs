//! The OpenFlow switch datapath as a simulated [`Device`].

use std::collections::HashMap;

use bytes::Bytes;
use netco_net::{Ctx, Device, Frame, NodeId, PortId};
use netco_sim::{SimDuration, SimTime};
use netco_telemetry::Counter;

use crate::action::{apply_actions, Action};
use crate::flow_table::{FlowEntry, FlowTable};
use crate::messages::{FlowModCommand, OfMessage, PacketInReason, PortDesc};
use crate::ports::OfPort;
use crate::wire;

const EXPIRY_TIMER: u64 = 1;

/// Static configuration of an [`OfSwitch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchConfig {
    /// Datapath id reported in features replies.
    pub datapath_id: u64,
    /// Packet-in buffer slots (0 disables buffering — full packets are
    /// then shipped to the controller, as in the paper's prototype, which
    /// notes buffering "if the router supports" it).
    pub n_buffers: usize,
    /// Bytes of the packet included in an unbuffered packet-in
    /// (`miss_send_len`); buffered packet-ins always truncate to this too.
    pub miss_send_len: usize,
    /// Period of the flow-expiry sweep.
    pub expiry_interval: SimDuration,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            datapath_id: 0,
            n_buffers: 256,
            miss_send_len: 128,
            expiry_interval: SimDuration::from_millis(500),
        }
    }
}

impl SwitchConfig {
    /// A config with the given datapath id and defaults elsewhere.
    pub fn with_datapath_id(datapath_id: u64) -> SwitchConfig {
        SwitchConfig {
            datapath_id,
            ..SwitchConfig::default()
        }
    }
}

/// Aggregate datapath statistics of a switch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Frames forwarded by flow entries.
    pub forwarded: u64,
    /// Frames shipped to the controller (miss or explicit action).
    pub to_controller: u64,
    /// Frames dropped because nothing matched and no controller is attached
    /// (or the action list had no output).
    pub dropped: u64,
    /// Frames dropped on a blocked ingress port.
    pub blocked: u64,
}

/// An OpenFlow 1.0 switch: flow table, packet-in/packet-out, flow-mod over
/// the control channel (speaking the real wire format), per-entry timeouts
/// and counters.
///
/// Switch-local rules can also be pre-installed with
/// [`OfSwitch::preinstall`] — the reproduction uses this the way the paper
/// used static Mininet flow rules.
pub struct OfSwitch {
    config: SwitchConfig,
    controller: Option<NodeId>,
    table: FlowTable,
    preinstalled: Vec<FlowEntry>,
    buffers: HashMap<u32, (u16, Frame)>,
    buffer_order: Vec<u32>,
    next_buffer_id: u32,
    next_xid: u32,
    blocked_ports: HashMap<u16, SimTime>,
    stats: SwitchStats,
    tel: SwitchTelemetry,
}

/// Workspace-wide datapath counters (aggregated over every switch in the
/// world); inert until the world enables telemetry.
#[derive(Default)]
struct SwitchTelemetry {
    table_hits: Counter,
    table_misses: Counter,
    packet_ins: Counter,
}

impl OfSwitch {
    /// Creates a switch with no controller attached.
    pub fn new(config: SwitchConfig) -> OfSwitch {
        OfSwitch {
            config,
            controller: None,
            table: FlowTable::new(),
            preinstalled: Vec::new(),
            buffers: HashMap::new(),
            buffer_order: Vec::new(),
            next_buffer_id: 1,
            next_xid: 1,
            blocked_ports: HashMap::new(),
            stats: SwitchStats::default(),
            tel: SwitchTelemetry::default(),
        }
    }

    /// Attaches the controller this switch will speak OpenFlow with
    /// (a control channel must also be registered on the world).
    pub fn set_controller(&mut self, controller: NodeId) {
        self.controller = Some(controller);
    }

    /// Queues a flow entry to be installed when the simulation starts.
    pub fn preinstall(&mut self, entry: FlowEntry) {
        self.preinstalled.push(entry);
    }

    /// Read access to the flow table (e.g. to monitor counters, as the
    /// paper's case study does).
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// Datapath statistics.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Drops everything arriving on `port` until `until` (used for the
    /// compare's DoS containment advice, paper §IV case 2).
    pub fn block_port(&mut self, port: PortId, until: SimTime) {
        self.blocked_ports.insert(port.number(), until);
    }

    /// `true` when `port` is currently blocked.
    pub fn is_port_blocked(&self, port: PortId, now: SimTime) -> bool {
        self.blocked_ports
            .get(&port.number())
            .is_some_and(|&until| now < until)
    }

    fn fresh_xid(&mut self) -> u32 {
        let x = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        x
    }

    fn send_to_controller(&mut self, ctx: &mut Ctx<'_>, msg: &OfMessage) {
        if let Some(controller) = self.controller {
            let xid = self.fresh_xid();
            ctx.send_control(controller, wire::encode(msg, xid));
        }
    }

    fn buffer_packet(&mut self, in_port: u16, frame: &Frame) -> Option<u32> {
        if self.config.n_buffers == 0 {
            return None;
        }
        if self.buffers.len() >= self.config.n_buffers {
            // Evict the oldest buffer (switches overwrite stale slots).
            if let Some(old) = self.buffer_order.first().copied() {
                self.buffer_order.remove(0);
                self.buffers.remove(&old);
            }
        }
        let id = self.next_buffer_id;
        self.next_buffer_id = self.next_buffer_id.wrapping_add(1).max(1);
        self.buffers.insert(id, (in_port, frame.clone()));
        self.buffer_order.push(id);
        Some(id)
    }

    fn emit(&mut self, ctx: &mut Ctx<'_>, in_port: Option<u16>, outputs: Vec<(OfPort, Frame)>) {
        let mut sent_any = false;
        for (port, frame) in outputs {
            match port {
                OfPort::Physical(p) => {
                    ctx.send_frame(PortId(p), frame);
                    sent_any = true;
                }
                OfPort::InPort => {
                    if let Some(p) = in_port {
                        ctx.send_frame(PortId(p), frame);
                        sent_any = true;
                    }
                }
                OfPort::Flood | OfPort::All => {
                    let mut targets = ctx.ports();
                    if port == OfPort::Flood {
                        targets.retain(|p| Some(p.number()) != in_port);
                    }
                    // Move the frame into the final replica send.
                    if let Some((&last, rest)) = targets.split_last() {
                        for &p in rest {
                            ctx.send_frame(p, frame.clone());
                        }
                        ctx.send_frame(last, frame);
                        sent_any = true;
                    }
                }
                OfPort::Controller => {
                    let data = truncate(frame.bytes(), self.config.miss_send_len);
                    let msg = OfMessage::PacketIn {
                        buffer_id: self.buffer_packet(in_port.unwrap_or(0), &frame),
                        in_port: in_port.unwrap_or(0),
                        reason: PacketInReason::Action,
                        data,
                    };
                    self.send_to_controller(ctx, &msg);
                    self.stats.to_controller += 1;
                }
                OfPort::None => {}
            }
        }
        if sent_any {
            self.stats.forwarded += 1;
        }
    }

    // The parameter list mirrors the `ofp_flow_mod` wire structure 1:1.
    #[allow(clippy::too_many_arguments)]
    fn handle_flow_mod(
        &mut self,
        ctx: &mut Ctx<'_>,
        command: FlowModCommand,
        matcher: crate::FlowMatch,
        priority: u16,
        idle_timeout_s: u16,
        hard_timeout_s: u16,
        cookie: u64,
        notify: bool,
        actions: Vec<Action>,
        buffer_id: Option<u32>,
    ) {
        let now = ctx.now();
        match command {
            FlowModCommand::Add => {
                let mut entry = FlowEntry::new(priority, matcher, actions.clone())
                    .with_cookie(cookie)
                    .with_notify(notify);
                if idle_timeout_s > 0 {
                    entry = entry.with_idle_timeout(SimDuration::from_secs(idle_timeout_s as u64));
                }
                if hard_timeout_s > 0 {
                    entry = entry.with_hard_timeout(SimDuration::from_secs(hard_timeout_s as u64));
                }
                self.table.add(entry, now);
            }
            FlowModCommand::Modify | FlowModCommand::ModifyStrict => {
                let strict_priority =
                    matches!(command, FlowModCommand::ModifyStrict).then_some(priority);
                let n = self.table.modify(&matcher, strict_priority, &actions);
                if n == 0 {
                    // OF 1.0: modify with no match behaves like add.
                    self.table
                        .add(FlowEntry::new(priority, matcher, actions.clone()), now);
                }
            }
            FlowModCommand::Delete | FlowModCommand::DeleteStrict => {
                let strict = matches!(command, FlowModCommand::DeleteStrict);
                let removed = self
                    .table
                    .delete(&matcher, strict.then_some(priority), strict);
                for entry in removed {
                    if entry.notify_when_removed() {
                        let msg = OfMessage::FlowRemoved {
                            matcher: entry.matcher().clone(),
                            cookie: entry.cookie(),
                            priority: entry.priority(),
                            reason: crate::FlowRemovedReason::Delete,
                            packet_count: entry.packet_count(),
                            byte_count: entry.byte_count(),
                        };
                        self.send_to_controller(ctx, &msg);
                    }
                }
            }
        }
        // Run a buffered packet through the (new) table state.
        if let Some(id) = buffer_id {
            if let Some((in_port, frame)) = self.take_buffer(id) {
                let outputs = apply_actions(&frame, &actions);
                self.emit(ctx, Some(in_port), outputs);
            }
        }
    }

    fn take_buffer(&mut self, id: u32) -> Option<(u16, Frame)> {
        self.buffer_order.retain(|&b| b != id);
        self.buffers.remove(&id)
    }
}

/// Zero-copy truncation: a shared sub-slice of the same buffer, never a
/// reallocation.
fn truncate(frame: &Bytes, len: usize) -> Bytes {
    if frame.len() <= len {
        frame.clone()
    } else {
        frame.slice(..len)
    }
}

impl Device for OfSwitch {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.telemetry().is_enabled() {
            self.tel = SwitchTelemetry {
                table_hits: ctx.telemetry().counter("openflow.table_hits"),
                table_misses: ctx.telemetry().counter("openflow.table_misses"),
                packet_ins: ctx.telemetry().counter("openflow.packet_ins"),
            };
        }
        let now = ctx.now();
        for entry in std::mem::take(&mut self.preinstalled) {
            self.table.add(entry, now);
        }
        if self.controller.is_some() {
            self.send_to_controller(ctx, &OfMessage::Hello);
        }
        ctx.schedule_timer(self.config.expiry_interval, EXPIRY_TIMER);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: Frame) {
        let now = ctx.now();
        if self.is_port_blocked(port, now) {
            self.stats.blocked += 1;
            return;
        }
        // Memoized parse: the byte sniff ran at most once for this content
        // anywhere in the world; this hop only stamps its ingress port.
        let fields = frame.fields_on(port.number());
        match self.table.lookup_counted(&fields, frame.len(), now) {
            Some(entry) => {
                self.tel.table_hits.inc();
                // Clone the Arc handle, not the list: `lookup_counted`
                // borrows the table mutably, so the actions must outlive
                // the borrow, but a per-packet Vec copy is not the way.
                let actions = entry.shared_actions();
                let outputs = apply_actions(&frame, &actions);
                if outputs.is_empty() {
                    self.stats.dropped += 1;
                }
                self.emit(ctx, Some(port.number()), outputs);
            }
            None => {
                self.tel.table_misses.inc();
                if self.controller.is_some() {
                    let data = truncate(frame.bytes(), self.config.miss_send_len);
                    let msg = OfMessage::PacketIn {
                        buffer_id: self.buffer_packet(port.number(), &frame),
                        in_port: port.number(),
                        reason: PacketInReason::NoMatch,
                        data,
                    };
                    self.send_to_controller(ctx, &msg);
                    self.stats.to_controller += 1;
                    self.tel.packet_ins.inc();
                } else {
                    self.stats.dropped += 1;
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != EXPIRY_TIMER {
            return;
        }
        let now = ctx.now();
        self.blocked_ports.retain(|_, &mut until| now < until);
        for (entry, reason) in self.table.expire(now) {
            if entry.notify_when_removed() {
                let msg = OfMessage::FlowRemoved {
                    matcher: entry.matcher().clone(),
                    cookie: entry.cookie(),
                    priority: entry.priority(),
                    reason,
                    packet_count: entry.packet_count(),
                    byte_count: entry.byte_count(),
                };
                self.send_to_controller(ctx, &msg);
            }
        }
        ctx.schedule_timer(self.config.expiry_interval, EXPIRY_TIMER);
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: Bytes) {
        if Some(from) != self.controller {
            return; // only the attached controller may program the switch
        }
        let (message, xid) = match wire::decode(&msg) {
            Ok(m) => m,
            Err(_) => {
                let reply = OfMessage::Error {
                    err_type: 0, // OFPET_HELLO_FAILED family: generic
                    code: 0,
                    data: truncate(&msg, 64),
                };
                self.send_to_controller(ctx, &reply);
                return;
            }
        };
        match message {
            OfMessage::Hello => {}
            OfMessage::EchoRequest(data) => {
                if let Some(controller) = self.controller {
                    ctx.send_control(controller, wire::encode(&OfMessage::EchoReply(data), xid));
                }
            }
            OfMessage::FeaturesRequest => {
                let ports = ctx
                    .ports()
                    .iter()
                    .map(|p| PortDesc {
                        port_no: p.number(),
                        hw_addr: netco_net::MacAddr::local(
                            0xff00_0000
                                | ((self.config.datapath_id as u32) << 8)
                                | p.number() as u32,
                        ),
                        name: format!("eth{}", p.number()),
                    })
                    .collect();
                let reply = OfMessage::FeaturesReply {
                    datapath_id: self.config.datapath_id,
                    n_buffers: self.config.n_buffers as u32,
                    n_tables: 1,
                    ports,
                };
                if let Some(controller) = self.controller {
                    ctx.send_control(controller, wire::encode(&reply, xid));
                }
            }
            OfMessage::PacketOut {
                buffer_id,
                in_port,
                actions,
                data,
            } => {
                let payload = match buffer_id.and_then(|id| self.take_buffer(id)) {
                    Some((buf_port, frame)) => Some((buf_port, frame)),
                    None if !data.is_empty() => Some((in_port, Frame::new(data))),
                    None => None,
                };
                if let Some((port, frame)) = payload {
                    let outputs = apply_actions(&frame, &actions);
                    self.emit(ctx, Some(port), outputs);
                }
            }
            OfMessage::FlowMod {
                command,
                matcher,
                priority,
                idle_timeout_s,
                hard_timeout_s,
                cookie,
                notify_when_removed,
                actions,
                buffer_id,
            } => {
                self.handle_flow_mod(
                    ctx,
                    command,
                    matcher,
                    priority,
                    idle_timeout_s,
                    hard_timeout_s,
                    cookie,
                    notify_when_removed,
                    actions,
                    buffer_id,
                );
            }
            OfMessage::BarrierRequest => {
                if let Some(controller) = self.controller {
                    ctx.send_control(controller, wire::encode(&OfMessage::BarrierReply, xid));
                }
            }
            OfMessage::FlowStatsRequest { matcher } => {
                let flows = self
                    .table
                    .iter()
                    .filter(|e| matcher.subsumes(e.matcher()))
                    .map(|e| crate::messages::FlowStats {
                        matcher: e.matcher().clone(),
                        priority: e.priority(),
                        cookie: e.cookie(),
                        packet_count: e.packet_count(),
                        byte_count: e.byte_count(),
                        actions: e.actions().to_vec(),
                    })
                    .collect();
                if let Some(controller) = self.controller {
                    ctx.send_control(
                        controller,
                        wire::encode(&OfMessage::FlowStatsReply { flows }, xid),
                    );
                }
            }
            // Replies/asynchronous messages are controller-bound; a switch
            // receiving them reports an error, per spec.
            _ => {
                let reply = OfMessage::Error {
                    err_type: 1, // OFPET_BAD_REQUEST
                    code: 1,     // OFPBRC_BAD_TYPE
                    data: truncate(&msg, 64),
                };
                self.send_to_controller(ctx, &reply);
            }
        }
    }
}

impl std::fmt::Debug for OfSwitch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OfSwitch")
            .field("datapath_id", &self.config.datapath_id)
            .field("flows", &self.table.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowMatch;
    use netco_net::packet::builder;
    use netco_net::testutil::CollectorDevice;
    use netco_net::{CpuModel, LinkSpec, MacAddr, World};
    use std::net::Ipv4Addr;

    const IP_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const IP_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn frame_to(dst: MacAddr) -> Bytes {
        builder::udp_frame(
            MacAddr::local(1),
            dst,
            IP_A,
            IP_B,
            1,
            2,
            Bytes::from_static(b"data"),
            None,
        )
    }

    /// host_a (p0) -- (p1) switch (p2) -- (p0) host_b, plus host_c on p3.
    fn three_port_world() -> (World, NodeId, NodeId, NodeId, NodeId) {
        let mut w = World::new(1);
        let a = w.add_node("a", CollectorDevice::default(), CpuModel::default());
        let b = w.add_node("b", CollectorDevice::default(), CpuModel::default());
        let c = w.add_node("c", CollectorDevice::default(), CpuModel::default());
        let sw = w.add_node(
            "sw",
            OfSwitch::new(SwitchConfig::default()),
            CpuModel::default(),
        );
        w.connect(a, PortId(0), sw, PortId(1), LinkSpec::ideal());
        w.connect(b, PortId(0), sw, PortId(2), LinkSpec::ideal());
        w.connect(c, PortId(0), sw, PortId(3), LinkSpec::ideal());
        (w, a, b, c, sw)
    }

    #[test]
    fn forwards_on_match() {
        let (mut w, a, b, c, sw) = three_port_world();
        w.device_mut::<OfSwitch>(sw)
            .unwrap()
            .preinstall(FlowEntry::new(
                10,
                FlowMatch::any().with_dl_dst(MacAddr::local(20)),
                vec![Action::Output(OfPort::Physical(2))],
            ));
        w.inject_frame(a, PortId(0), Bytes::new()); // wake a (no-op)
        w.inject_frame(sw, PortId(1), frame_to(MacAddr::local(20)));
        w.run_for(SimDuration::from_millis(1));
        assert_eq!(w.device::<CollectorDevice>(b).unwrap().frames.len(), 1);
        assert_eq!(w.device::<CollectorDevice>(c).unwrap().frames.len(), 0);
        let _ = a;
        let st = w.device::<OfSwitch>(sw).unwrap().stats();
        assert_eq!(st.forwarded, 1);
    }

    #[test]
    fn drops_on_miss_without_controller() {
        let (mut w, _a, b, c, sw) = three_port_world();
        w.inject_frame(sw, PortId(1), frame_to(MacAddr::local(99)));
        w.run_for(SimDuration::from_millis(1));
        assert_eq!(w.device::<CollectorDevice>(b).unwrap().frames.len(), 0);
        assert_eq!(w.device::<CollectorDevice>(c).unwrap().frames.len(), 0);
        assert_eq!(w.device::<OfSwitch>(sw).unwrap().stats().dropped, 1);
        assert_eq!(w.device::<OfSwitch>(sw).unwrap().table().miss_count(), 1);
    }

    #[test]
    fn flood_excludes_ingress() {
        let (mut w, a, b, c, sw) = three_port_world();
        w.device_mut::<OfSwitch>(sw)
            .unwrap()
            .preinstall(FlowEntry::new(
                1,
                FlowMatch::any(),
                vec![Action::Output(OfPort::Flood)],
            ));
        w.inject_frame(sw, PortId(1), frame_to(MacAddr::BROADCAST));
        w.run_for(SimDuration::from_millis(1));
        assert_eq!(w.device::<CollectorDevice>(a).unwrap().frames.len(), 0);
        assert_eq!(w.device::<CollectorDevice>(b).unwrap().frames.len(), 1);
        assert_eq!(w.device::<CollectorDevice>(c).unwrap().frames.len(), 1);
    }

    #[test]
    fn all_includes_ingress() {
        let (mut w, a, b, c, sw) = three_port_world();
        w.device_mut::<OfSwitch>(sw)
            .unwrap()
            .preinstall(FlowEntry::new(
                1,
                FlowMatch::any(),
                vec![Action::Output(OfPort::All)],
            ));
        w.inject_frame(sw, PortId(1), frame_to(MacAddr::BROADCAST));
        w.run_for(SimDuration::from_millis(1));
        assert_eq!(w.device::<CollectorDevice>(a).unwrap().frames.len(), 1);
        assert_eq!(w.device::<CollectorDevice>(b).unwrap().frames.len(), 1);
        assert_eq!(w.device::<CollectorDevice>(c).unwrap().frames.len(), 1);
    }

    #[test]
    fn blocked_port_drops() {
        let (mut w, _a, b, _c, sw) = three_port_world();
        {
            let s = w.device_mut::<OfSwitch>(sw).unwrap();
            s.preinstall(FlowEntry::new(
                1,
                FlowMatch::any(),
                vec![Action::Output(OfPort::Physical(2))],
            ));
            s.block_port(PortId(1), SimTime::from_nanos(u64::MAX));
        }
        w.inject_frame(sw, PortId(1), frame_to(MacAddr::local(20)));
        w.run_for(SimDuration::from_millis(1));
        assert_eq!(w.device::<CollectorDevice>(b).unwrap().frames.len(), 0);
        assert_eq!(w.device::<OfSwitch>(sw).unwrap().stats().blocked, 1);
    }

    #[test]
    fn rewrite_actions_apply_in_datapath() {
        let (mut w, _a, b, _c, sw) = three_port_world();
        w.device_mut::<OfSwitch>(sw)
            .unwrap()
            .preinstall(FlowEntry::new(
                1,
                FlowMatch::any(),
                vec![Action::SetVlanVid(42), Action::Output(OfPort::Physical(2))],
            ));
        w.inject_frame(sw, PortId(1), frame_to(MacAddr::local(20)));
        w.run_for(SimDuration::from_millis(1));
        let frames = &w.device::<CollectorDevice>(b).unwrap().frames;
        let v = netco_net::packet::FrameView::parse(&frames[0].1).unwrap();
        assert_eq!(v.eth.vlan.unwrap().vid, 42);
    }

    // --- control-channel tests using a scripted controller device ---

    /// A minimal scripted controller: sends `script` messages at start,
    /// records every message it receives.
    #[derive(Default)]
    struct ScriptedController {
        switch: Option<NodeId>,
        script: Vec<OfMessage>,
        received: Vec<OfMessage>,
    }

    impl Device for ScriptedController {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule_timer(SimDuration::from_micros(1), 0);
        }
        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _frame: Frame) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            if let Some(sw) = self.switch {
                for (i, m) in self.script.drain(..).enumerate() {
                    ctx.send_control(sw, wire::encode(&m, i as u32 + 100));
                }
            }
        }
        fn on_control(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, msg: Bytes) {
            if let Ok((m, _)) = wire::decode(&msg) {
                self.received.push(m);
            }
        }
    }

    fn controlled_world(script: Vec<OfMessage>) -> (World, NodeId, NodeId, NodeId, NodeId) {
        let (mut w, a, b, _c, sw) = three_port_world();
        let ctl = w.add_node("ctl", ScriptedController::default(), CpuModel::default());
        w.connect_control(sw, ctl, Default::default());
        w.device_mut::<OfSwitch>(sw).unwrap().set_controller(ctl);
        {
            let c = w.device_mut::<ScriptedController>(ctl).unwrap();
            c.switch = Some(sw);
            c.script = script;
        }
        (w, a, b, sw, ctl)
    }

    #[test]
    fn switch_says_hello() {
        let (mut w, _a, _b, _sw, ctl) = controlled_world(vec![]);
        w.run_for(SimDuration::from_millis(10));
        let c = w.device::<ScriptedController>(ctl).unwrap();
        assert!(c.received.contains(&OfMessage::Hello));
    }

    #[test]
    fn miss_generates_packet_in_and_packet_out_releases_buffer() {
        let (mut w, _a, b, sw, ctl) = controlled_world(vec![]);
        w.inject_frame(sw, PortId(1), frame_to(MacAddr::local(20)));
        w.run_for(SimDuration::from_millis(10));
        let buffer_id = {
            let c = w.device::<ScriptedController>(ctl).unwrap();
            let pi = c
                .received
                .iter()
                .find_map(|m| match m {
                    OfMessage::PacketIn {
                        buffer_id,
                        in_port,
                        reason: PacketInReason::NoMatch,
                        ..
                    } => Some((*buffer_id, *in_port)),
                    _ => None,
                })
                .expect("packet-in expected");
            assert_eq!(pi.1, 1);
            pi.0.expect("buffered")
        };
        // Release the buffer out port 2 via a packet-out from a fresh
        // scripted controller (the switch is re-pointed at it).
        let shot = w.add_node("shot", ScriptedController::default(), CpuModel::default());
        w.connect_control(sw, shot, Default::default());
        w.device_mut::<OfSwitch>(sw).unwrap().set_controller(shot);
        {
            let s = w.device_mut::<ScriptedController>(shot).unwrap();
            s.switch = Some(sw);
            s.script = vec![OfMessage::PacketOut {
                buffer_id: Some(buffer_id),
                in_port: 1,
                actions: vec![Action::Output(OfPort::Physical(2))],
                data: Bytes::new(),
            }];
        }
        let _ = ctl;
        w.run_for(SimDuration::from_millis(10));
        let released = w.device::<CollectorDevice>(b).unwrap().frames.len();
        assert_eq!(released, 1, "buffered frame must reach host b");
    }

    #[test]
    fn flow_mod_add_then_traffic_flows() {
        let fm = OfMessage::add_flow(
            50,
            FlowMatch::any().with_dl_dst(MacAddr::local(20)),
            vec![Action::Output(OfPort::Physical(2))],
        );
        let (mut w, _a, b, sw, _ctl) = controlled_world(vec![fm]);
        w.run_for(SimDuration::from_millis(5)); // let the flow-mod land
        w.inject_frame(sw, PortId(1), frame_to(MacAddr::local(20)));
        w.run_for(SimDuration::from_millis(5));
        assert_eq!(w.device::<CollectorDevice>(b).unwrap().frames.len(), 1);
        let table = w.device::<OfSwitch>(sw).unwrap().table();
        assert_eq!(table.len(), 1);
        assert_eq!(table.iter().next().unwrap().packet_count(), 1);
    }

    #[test]
    fn echo_and_features_and_barrier() {
        let (mut w, _a, _b, _sw, ctl) = controlled_world(vec![
            OfMessage::EchoRequest(Bytes::from_static(b"abc")),
            OfMessage::FeaturesRequest,
            OfMessage::BarrierRequest,
        ]);
        w.run_for(SimDuration::from_millis(10));
        let c = w.device::<ScriptedController>(ctl).unwrap();
        assert!(c
            .received
            .contains(&OfMessage::EchoReply(Bytes::from_static(b"abc"))));
        assert!(c.received.iter().any(|m| matches!(
            m,
            OfMessage::FeaturesReply { n_tables: 1, ports, .. } if ports.len() == 3
        )));
        assert!(c.received.contains(&OfMessage::BarrierReply));
    }

    #[test]
    fn flow_stats_report_live_counters() {
        let fm = OfMessage::add_flow(
            50,
            FlowMatch::any().with_dl_dst(MacAddr::local(20)),
            vec![Action::Output(OfPort::Physical(2))],
        );
        let (mut w, _a, _b, sw, ctl) = controlled_world(vec![
            fm,
            OfMessage::FlowStatsRequest {
                matcher: FlowMatch::any(),
            },
        ]);
        w.run_for(SimDuration::from_millis(5));
        let frame = frame_to(MacAddr::local(20));
        let bytes = frame.len() as u64;
        w.inject_frame(sw, PortId(1), frame);
        w.run_for(SimDuration::from_millis(5));
        // Ask again after traffic.
        let shot = w.add_node("shot", ScriptedController::default(), CpuModel::default());
        w.connect_control(sw, shot, Default::default());
        w.device_mut::<OfSwitch>(sw).unwrap().set_controller(shot);
        {
            let s = w.device_mut::<ScriptedController>(shot).unwrap();
            s.switch = Some(sw);
            s.script = vec![OfMessage::FlowStatsRequest {
                matcher: FlowMatch::any(),
            }];
        }
        let _ = ctl;
        w.run_for(SimDuration::from_millis(5));
        let c = w.device::<ScriptedController>(shot).unwrap();
        let flows = c
            .received
            .iter()
            .find_map(|m| match m {
                OfMessage::FlowStatsReply { flows } => Some(flows.clone()),
                _ => None,
            })
            .expect("stats reply expected");
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].priority, 50);
        assert_eq!(flows[0].packet_count, 1);
        assert_eq!(flows[0].byte_count, bytes);
    }

    #[test]
    fn garbage_control_message_yields_error() {
        let (mut w, _a, _b, sw, ctl) = controlled_world(vec![]);
        // Send raw garbage on the control channel.
        #[derive(Default)]
        struct Garbage {
            to: Option<NodeId>,
        }
        impl Device for Garbage {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule_timer(SimDuration::ZERO, 0);
            }
            fn on_frame(&mut self, _: &mut Ctx<'_>, _: PortId, _: Frame) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: u64) {
                if let Some(to) = self.to {
                    ctx.send_control(to, Bytes::from_static(b"\x01\xff\x00\x09\x00\x00\x00\x01x"));
                }
            }
        }
        let _ = ctl;
        let g = w.add_node("garbage", Garbage::default(), CpuModel::default());
        w.connect_control(sw, g, Default::default());
        w.device_mut::<OfSwitch>(sw).unwrap().set_controller(g);
        w.device_mut::<Garbage>(g).unwrap().to = Some(sw);
        w.run_for(SimDuration::from_millis(10));
        // The switch does not crash and the table is untouched.
        assert_eq!(w.device::<OfSwitch>(sw).unwrap().table().len(), 0);
    }

    #[test]
    fn non_controller_cannot_program_switch() {
        let (mut w, _a, _b, sw, ctl) = controlled_world(vec![]);
        let rogue = w.add_node("rogue", ScriptedController::default(), CpuModel::default());
        w.connect_control(sw, rogue, Default::default());
        {
            let r = w.device_mut::<ScriptedController>(rogue).unwrap();
            r.switch = Some(sw);
            r.script = vec![OfMessage::add_flow(
                1,
                FlowMatch::any(),
                vec![Action::Output(OfPort::All)],
            )];
        }
        let _ = ctl;
        w.run_for(SimDuration::from_millis(10));
        assert_eq!(w.device::<OfSwitch>(sw).unwrap().table().len(), 0);
    }

    /// Packet-in truncation is a shared view of the frame's buffer — the
    /// miss path must never reallocate the (possibly jumbo) payload just
    /// to ship the controller its first `miss_send_len` bytes.
    #[test]
    fn packet_in_truncation_is_zero_copy() {
        let wire = builder::udp_frame(
            MacAddr::local(1),
            MacAddr::local(2),
            IP_A,
            IP_B,
            1,
            2,
            Bytes::from(vec![0xEEu8; 1400]),
            None,
        );
        let cut = truncate(&wire, 128);
        assert_eq!(cut.len(), 128);
        assert_eq!(cut.as_ptr(), wire.as_ptr(), "sub-slice views the buffer");
        let whole = truncate(&wire, usize::MAX);
        assert_eq!(whole.len(), wire.len());
        assert_eq!(whole.as_ptr(), wire.as_ptr(), "no-op cut stays shared");
    }

    /// A buffered frame comes back from `take_buffer` as the same Frame:
    /// same underlying buffer (pointer and length) and the same memo, so
    /// the post-`PacketOut` emit reuses the ingress parse.
    #[test]
    fn buffered_frame_handoff_is_zero_copy() {
        let mut sw = OfSwitch::new(SwitchConfig::default());
        let frame = Frame::from(frame_to(MacAddr::local(9)));
        let fp = frame.fp128();
        let id = sw.buffer_packet(7, &frame).expect("buffering enabled");
        let (in_port, back) = sw.take_buffer(id).expect("buffer held");
        assert_eq!(in_port, 7);
        assert_eq!(back.bytes().as_ptr(), frame.bytes().as_ptr());
        assert_eq!(back.len(), frame.len());
        let before = netco_net::memo_stats();
        assert_eq!(back.fp128(), fp);
        let d = netco_net::memo_stats().since(before);
        assert_eq!(d.fp_misses, 0, "handoff kept the memoized fingerprint");
        assert_eq!(d.fp_hits, 1);
    }
}
