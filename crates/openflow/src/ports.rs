//! OpenFlow 1.0 port numbers, including the reserved virtual ports.

use std::fmt;

use netco_net::PortId;

/// An OpenFlow port reference: either a physical port or one of the
/// reserved virtual ports this subset supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OfPort {
    /// A physical switch port.
    Physical(u16),
    /// Send back out the ingress port (`OFPP_IN_PORT`, 0xfff8).
    InPort,
    /// All physical ports except the ingress port (`OFPP_FLOOD`, 0xfffb).
    Flood,
    /// All physical ports including the ingress port (`OFPP_ALL`, 0xfffc).
    All,
    /// The controller (`OFPP_CONTROLLER`, 0xfffd).
    Controller,
    /// No port — drops the packet (`OFPP_NONE`, 0xffff).
    None,
}

impl OfPort {
    const IN_PORT: u16 = 0xfff8;
    const FLOOD: u16 = 0xfffb;
    const ALL: u16 = 0xfffc;
    const CONTROLLER: u16 = 0xfffd;
    const NONE: u16 = 0xffff;
    /// Highest valid physical port number in OF 1.0 (`OFPP_MAX`).
    pub const MAX_PHYSICAL: u16 = 0xff00;

    /// The wire encoding of this port.
    pub fn to_u16(self) -> u16 {
        match self {
            OfPort::Physical(p) => p,
            OfPort::InPort => OfPort::IN_PORT,
            OfPort::Flood => OfPort::FLOOD,
            OfPort::All => OfPort::ALL,
            OfPort::Controller => OfPort::CONTROLLER,
            OfPort::None => OfPort::NONE,
        }
    }

    /// Interprets a wire value. Unknown reserved values map to
    /// [`OfPort::None`] (the safe, drop-everything reading).
    pub fn from_u16(v: u16) -> OfPort {
        match v {
            OfPort::IN_PORT => OfPort::InPort,
            OfPort::FLOOD => OfPort::Flood,
            OfPort::ALL => OfPort::All,
            OfPort::CONTROLLER => OfPort::Controller,
            OfPort::NONE => OfPort::None,
            p if p <= OfPort::MAX_PHYSICAL => OfPort::Physical(p),
            _ => OfPort::None,
        }
    }

    /// The physical port id, if this is a physical port.
    pub fn physical(self) -> Option<PortId> {
        match self {
            OfPort::Physical(p) => Some(PortId(p)),
            _ => None,
        }
    }
}

impl From<PortId> for OfPort {
    fn from(p: PortId) -> OfPort {
        OfPort::Physical(p.0)
    }
}

impl fmt::Display for OfPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfPort::Physical(p) => write!(f, "{p}"),
            OfPort::InPort => write!(f, "IN_PORT"),
            OfPort::Flood => write!(f, "FLOOD"),
            OfPort::All => write!(f, "ALL"),
            OfPort::Controller => write!(f, "CONTROLLER"),
            OfPort::None => write!(f, "NONE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        for p in [
            OfPort::Physical(0),
            OfPort::Physical(42),
            OfPort::InPort,
            OfPort::Flood,
            OfPort::All,
            OfPort::Controller,
            OfPort::None,
        ] {
            assert_eq!(OfPort::from_u16(p.to_u16()), p);
        }
    }

    #[test]
    fn unknown_reserved_is_none() {
        assert_eq!(OfPort::from_u16(0xfffa), OfPort::None); // OFPP_NORMAL unsupported
    }

    #[test]
    fn physical_conversion() {
        assert_eq!(OfPort::Physical(7).physical(), Some(PortId(7)));
        assert_eq!(OfPort::Flood.physical(), None);
        assert_eq!(OfPort::from(PortId(3)), OfPort::Physical(3));
    }

    #[test]
    fn display() {
        assert_eq!(OfPort::Physical(3).to_string(), "3");
        assert_eq!(OfPort::Controller.to_string(), "CONTROLLER");
    }
}
