//! The OpenFlow 1.0 flow match (12-tuple with per-field wildcards).

use std::fmt;
use std::net::Ipv4Addr;

use netco_net::MacAddr;

use netco_net::packet::PacketFields;

/// An OF 1.0 match: each field is either a concrete value or wildcarded
/// (`None`).
///
/// This subset wildcards `nw_src`/`nw_dst` all-or-nothing (no CIDR
/// prefixes); the paper's prototype matches only on `dl_dst`, so prefix
/// masks are not needed (documented limitation).
///
/// # Example
///
/// ```
/// use netco_net::MacAddr;
/// use netco_openflow::{FlowMatch, PacketFields};
///
/// let m = FlowMatch::default().with_dl_dst(MacAddr::local(9));
/// let mut f = PacketFields::default();
/// assert!(!m.matches(&f));
/// f.dl_dst = MacAddr::local(9);
/// assert!(m.matches(&f));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlowMatch {
    /// Ingress port.
    pub in_port: Option<u16>,
    /// Ethernet source.
    pub dl_src: Option<MacAddr>,
    /// Ethernet destination.
    pub dl_dst: Option<MacAddr>,
    /// VLAN id ([`crate::fields::OFP_VLAN_NONE`] matches untagged frames).
    pub dl_vlan: Option<u16>,
    /// VLAN priority.
    pub dl_vlan_pcp: Option<u8>,
    /// EtherType.
    pub dl_type: Option<u16>,
    /// IP ToS (DSCP).
    pub nw_tos: Option<u8>,
    /// IP protocol.
    pub nw_proto: Option<u8>,
    /// IPv4 source (exact).
    pub nw_src: Option<Ipv4Addr>,
    /// IPv4 destination (exact).
    pub nw_dst: Option<Ipv4Addr>,
    /// L4 source port / ICMP type.
    pub tp_src: Option<u16>,
    /// L4 destination port / ICMP code.
    pub tp_dst: Option<u16>,
}

impl FlowMatch {
    /// The fully wildcarded match (matches everything).
    pub fn any() -> FlowMatch {
        FlowMatch::default()
    }

    /// Builder: match on ingress port.
    pub fn with_in_port(mut self, port: u16) -> FlowMatch {
        self.in_port = Some(port);
        self
    }

    /// Builder: match on Ethernet source.
    pub fn with_dl_src(mut self, mac: MacAddr) -> FlowMatch {
        self.dl_src = Some(mac);
        self
    }

    /// Builder: match on Ethernet destination.
    pub fn with_dl_dst(mut self, mac: MacAddr) -> FlowMatch {
        self.dl_dst = Some(mac);
        self
    }

    /// Builder: match on VLAN id.
    pub fn with_dl_vlan(mut self, vlan: u16) -> FlowMatch {
        self.dl_vlan = Some(vlan);
        self
    }

    /// Builder: match on EtherType.
    pub fn with_dl_type(mut self, ethertype: u16) -> FlowMatch {
        self.dl_type = Some(ethertype);
        self
    }

    /// Builder: match on IP protocol.
    pub fn with_nw_proto(mut self, proto: u8) -> FlowMatch {
        self.nw_proto = Some(proto);
        self
    }

    /// Builder: match on IPv4 source.
    pub fn with_nw_src(mut self, ip: Ipv4Addr) -> FlowMatch {
        self.nw_src = Some(ip);
        self
    }

    /// Builder: match on IPv4 destination.
    pub fn with_nw_dst(mut self, ip: Ipv4Addr) -> FlowMatch {
        self.nw_dst = Some(ip);
        self
    }

    /// Builder: match on L4 source port.
    pub fn with_tp_src(mut self, port: u16) -> FlowMatch {
        self.tp_src = Some(port);
        self
    }

    /// Builder: match on L4 destination port.
    pub fn with_tp_dst(mut self, port: u16) -> FlowMatch {
        self.tp_dst = Some(port);
        self
    }

    /// `true` when `fields` satisfies every concrete field of this match.
    pub fn matches(&self, fields: &PacketFields) -> bool {
        fn ok<T: PartialEq>(m: &Option<T>, v: &T) -> bool {
            m.as_ref().is_none_or(|x| x == v)
        }
        ok(&self.in_port, &fields.in_port)
            && ok(&self.dl_src, &fields.dl_src)
            && ok(&self.dl_dst, &fields.dl_dst)
            && ok(&self.dl_vlan, &fields.dl_vlan)
            && ok(&self.dl_vlan_pcp, &fields.dl_vlan_pcp)
            && ok(&self.dl_type, &fields.dl_type)
            && ok(&self.nw_tos, &fields.nw_tos)
            && ok(&self.nw_proto, &fields.nw_proto)
            && ok(&self.nw_src, &fields.nw_src)
            && ok(&self.nw_dst, &fields.nw_dst)
            && ok(&self.tp_src, &fields.tp_src)
            && ok(&self.tp_dst, &fields.tp_dst)
    }

    /// `true` when this match is at least as general as `other` (every
    /// packet matched by `other` is matched by `self`). Used for
    /// non-strict flow deletion.
    pub fn subsumes(&self, other: &FlowMatch) -> bool {
        fn sub<T: PartialEq>(general: &Option<T>, specific: &Option<T>) -> bool {
            match (general, specific) {
                (None, _) => true,
                (Some(g), Some(s)) => g == s,
                (Some(_), None) => false,
            }
        }
        sub(&self.in_port, &other.in_port)
            && sub(&self.dl_src, &other.dl_src)
            && sub(&self.dl_dst, &other.dl_dst)
            && sub(&self.dl_vlan, &other.dl_vlan)
            && sub(&self.dl_vlan_pcp, &other.dl_vlan_pcp)
            && sub(&self.dl_type, &other.dl_type)
            && sub(&self.nw_tos, &other.nw_tos)
            && sub(&self.nw_proto, &other.nw_proto)
            && sub(&self.nw_src, &other.nw_src)
            && sub(&self.nw_dst, &other.nw_dst)
            && sub(&self.tp_src, &other.tp_src)
            && sub(&self.tp_dst, &other.tp_dst)
    }

    /// When this match is wildcard-free (all 12 fields concrete), the one
    /// [`PacketFields`] value it matches — the key of the flow table's
    /// exact-match index. `None` as soon as any field is wildcarded.
    pub fn exact_key(&self) -> Option<PacketFields> {
        Some(PacketFields {
            in_port: self.in_port?,
            dl_src: self.dl_src?,
            dl_dst: self.dl_dst?,
            dl_vlan: self.dl_vlan?,
            dl_vlan_pcp: self.dl_vlan_pcp?,
            dl_type: self.dl_type?,
            nw_tos: self.nw_tos?,
            nw_proto: self.nw_proto?,
            nw_src: self.nw_src?,
            nw_dst: self.nw_dst?,
            tp_src: self.tp_src?,
            tp_dst: self.tp_dst?,
        })
    }

    /// Builds the wildcard-free match for exactly `fields` (the inverse of
    /// [`FlowMatch::exact_key`]) — what a microflow rule installs.
    pub fn exact(fields: &PacketFields) -> FlowMatch {
        FlowMatch {
            in_port: Some(fields.in_port),
            dl_src: Some(fields.dl_src),
            dl_dst: Some(fields.dl_dst),
            dl_vlan: Some(fields.dl_vlan),
            dl_vlan_pcp: Some(fields.dl_vlan_pcp),
            dl_type: Some(fields.dl_type),
            nw_tos: Some(fields.nw_tos),
            nw_proto: Some(fields.nw_proto),
            nw_src: Some(fields.nw_src),
            nw_dst: Some(fields.nw_dst),
            tp_src: Some(fields.tp_src),
            tp_dst: Some(fields.tp_dst),
        }
    }

    /// Number of concrete (non-wildcarded) fields.
    pub fn specificity(&self) -> u32 {
        self.in_port.is_some() as u32
            + self.dl_src.is_some() as u32
            + self.dl_dst.is_some() as u32
            + self.dl_vlan.is_some() as u32
            + self.dl_vlan_pcp.is_some() as u32
            + self.dl_type.is_some() as u32
            + self.nw_tos.is_some() as u32
            + self.nw_proto.is_some() as u32
            + self.nw_src.is_some() as u32
            + self.nw_dst.is_some() as u32
            + self.tp_src.is_some() as u32
            + self.tp_dst.is_some() as u32
    }
}

impl fmt::Display for FlowMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        macro_rules! field {
            ($name:literal, $v:expr) => {
                if let Some(v) = &$v {
                    if wrote {
                        write!(f, ",")?;
                    }
                    write!(f, concat!($name, "={}"), v)?;
                    wrote = true;
                }
            };
        }
        field!("in_port", self.in_port);
        field!("dl_src", self.dl_src);
        field!("dl_dst", self.dl_dst);
        field!("dl_vlan", self.dl_vlan);
        field!("dl_type", self.dl_type);
        field!("nw_proto", self.nw_proto);
        field!("nw_src", self.nw_src);
        field!("nw_dst", self.nw_dst);
        field!("tp_src", self.tp_src);
        field!("tp_dst", self.tp_dst);
        if !wrote {
            write!(f, "*")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields() -> PacketFields {
        PacketFields {
            in_port: 1,
            dl_src: MacAddr::local(1),
            dl_dst: MacAddr::local(2),
            dl_type: 0x0800,
            nw_proto: 17,
            nw_src: Ipv4Addr::new(10, 0, 0, 1),
            nw_dst: Ipv4Addr::new(10, 0, 0, 2),
            tp_src: 5000,
            tp_dst: 6000,
            ..PacketFields::default()
        }
    }

    #[test]
    fn wildcard_matches_everything() {
        assert!(FlowMatch::any().matches(&fields()));
        assert!(FlowMatch::any().matches(&PacketFields::default()));
    }

    #[test]
    fn each_field_filters() {
        let f = fields();
        assert!(FlowMatch::any().with_in_port(1).matches(&f));
        assert!(!FlowMatch::any().with_in_port(2).matches(&f));
        assert!(FlowMatch::any().with_dl_dst(MacAddr::local(2)).matches(&f));
        assert!(!FlowMatch::any().with_dl_dst(MacAddr::local(3)).matches(&f));
        assert!(FlowMatch::any().with_nw_proto(17).matches(&f));
        assert!(!FlowMatch::any().with_nw_proto(6).matches(&f));
        assert!(FlowMatch::any().with_tp_dst(6000).matches(&f));
        assert!(!FlowMatch::any().with_tp_dst(6001).matches(&f));
    }

    #[test]
    fn conjunction_of_fields() {
        let m = FlowMatch::any()
            .with_dl_type(0x0800)
            .with_nw_dst(Ipv4Addr::new(10, 0, 0, 2))
            .with_tp_dst(6000);
        assert!(m.matches(&fields()));
        let mut f2 = fields();
        f2.tp_dst = 1;
        assert!(!m.matches(&f2));
    }

    #[test]
    fn subsumption() {
        let general = FlowMatch::any().with_dl_type(0x0800);
        let specific = FlowMatch::any().with_dl_type(0x0800).with_nw_proto(6);
        assert!(FlowMatch::any().subsumes(&general));
        assert!(general.subsumes(&specific));
        assert!(!specific.subsumes(&general));
        assert!(general.subsumes(&general));
        let other = FlowMatch::any().with_dl_type(0x0806);
        assert!(!general.subsumes(&other));
    }

    #[test]
    fn specificity_counts() {
        assert_eq!(FlowMatch::any().specificity(), 0);
        assert_eq!(
            FlowMatch::any()
                .with_in_port(1)
                .with_tp_src(2)
                .specificity(),
            2
        );
    }

    #[test]
    fn exact_key_roundtrips() {
        let f = fields();
        let m = FlowMatch::exact(&f);
        assert_eq!(m.specificity(), 12);
        assert_eq!(m.exact_key().as_ref(), Some(&f));
        assert!(m.matches(&f));
        let mut other = f.clone();
        other.tp_dst ^= 1;
        assert!(!m.matches(&other));
    }

    #[test]
    fn any_wildcard_defeats_exact_key() {
        let f = fields();
        let mut m = FlowMatch::exact(&f);
        m.nw_tos = None;
        assert_eq!(m.exact_key(), None);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(FlowMatch::any().to_string(), "*");
        let m = FlowMatch::any()
            .with_in_port(3)
            .with_dl_dst(MacAddr::local(1));
        assert_eq!(m.to_string(), "in_port=3,dl_dst=02:00:00:00:00:01");
    }
}
