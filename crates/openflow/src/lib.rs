//! An OpenFlow 1.0 subset: the match-action substrate of the paper.
//!
//! The NetCo prototype (paper §IV) is built on OpenFlow 1.0 switches; this
//! crate provides the pieces the reproduction needs, from the bottom up:
//!
//! * [`PacketFields`] — tolerant header-field extraction ("sniffing") used
//!   for matching; switches never drop frames over bad L4 checksums.
//! * [`FlowMatch`] — the OF 1.0 12-tuple with per-field wildcards.
//! * [`Action`] — output/rewrite actions, applied to real wire bytes with
//!   checksum fix-ups.
//! * [`FlowTable`] / [`FlowEntry`] — priority lookup, timeouts, counters.
//! * [`OfMessage`] + [`wire`] — byte-accurate OpenFlow 1.0 message codec
//!   (hello, echo, features, packet-in, packet-out, flow-mod, barrier,
//!   flow-removed, error).
//! * [`OfSwitch`] — a [`netco_net::Device`] implementing the datapath:
//!   table lookup, action execution, packet-in buffering, and the control
//!   channel speaking the wire format.
//!
//! # Example: a one-rule switch
//!
//! ```
//! use netco_openflow::{Action, FlowEntry, FlowMatch, FlowTable, OfPort, PacketFields};
//! use netco_net::MacAddr;
//! use netco_sim::SimTime;
//!
//! let mut table = FlowTable::new();
//! table.add(
//!     FlowEntry::new(
//!         100,
//!         FlowMatch::default().with_dl_dst(MacAddr::local(2)),
//!         vec![Action::Output(OfPort::Physical(3))],
//!     ),
//!     SimTime::ZERO,
//! );
//! let fields = PacketFields { dl_dst: MacAddr::local(2), ..PacketFields::default() };
//! let entry = table.lookup(&fields, SimTime::ZERO).unwrap();
//! assert_eq!(entry.actions(), &[Action::Output(OfPort::Physical(3))]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
pub mod canonical;
mod flow_match;
mod flow_table;
mod messages;
mod ports;
mod switch;
pub mod wire;

pub use action::{apply_actions, apply_rewrites, Action};
// Header-field extraction moved next to the `Frame` memo in `netco_net`;
// re-exported here so OpenFlow callers keep their import paths.
pub use flow_match::FlowMatch;
#[doc(hidden)]
pub use flow_table::baseline;
pub use flow_table::{FlowEntry, FlowRemovedReason, FlowTable};
pub use messages::{FlowModCommand, FlowStats, OfMessage, PacketInReason, PortDesc};
pub use netco_net::packet::{PacketFields, OFP_VLAN_NONE};
pub use ports::OfPort;
pub use switch::{OfSwitch, SwitchConfig};
