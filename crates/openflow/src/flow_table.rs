//! Flow entries and the priority-ordered flow table.

use std::collections::HashMap;
use std::sync::Arc;

use netco_sim::fxhash::FxBuildHasher;
use netco_sim::{SimDuration, SimTime};

use crate::action::Action;
use crate::flow_match::FlowMatch;
use netco_net::packet::PacketFields;

/// Why a flow entry left the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowRemovedReason {
    /// No packet matched within the idle timeout.
    IdleTimeout,
    /// The hard timeout elapsed.
    HardTimeout,
    /// A delete flow-mod removed it.
    Delete,
}

/// One match-action rule with counters and timeouts.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEntry {
    priority: u16,
    matcher: FlowMatch,
    // Shared so the per-packet fast path clones a handle, not the list.
    // Atomically counted (`Arc`, not `Rc`) so whole tables can move across
    // the NETCO_THREADS sweep workers without a deep copy; the atomic bump
    // is a wash against the cache miss the clone already pays.
    actions: Arc<[Action]>,
    cookie: u64,
    idle_timeout: Option<SimDuration>,
    hard_timeout: Option<SimDuration>,
    notify_when_removed: bool,
    created_at: SimTime,
    last_matched: SimTime,
    packets: u64,
    bytes: u64,
}

impl FlowEntry {
    /// Creates an entry with no timeouts and zero cookie.
    pub fn new(priority: u16, matcher: FlowMatch, actions: Vec<Action>) -> FlowEntry {
        FlowEntry {
            priority,
            matcher,
            actions: actions.into(),
            cookie: 0,
            idle_timeout: None,
            hard_timeout: None,
            notify_when_removed: false,
            created_at: SimTime::ZERO,
            last_matched: SimTime::ZERO,
            packets: 0,
            bytes: 0,
        }
    }

    /// Builder: sets the idle timeout.
    pub fn with_idle_timeout(mut self, timeout: SimDuration) -> FlowEntry {
        self.idle_timeout = Some(timeout);
        self
    }

    /// Builder: sets the hard timeout.
    pub fn with_hard_timeout(mut self, timeout: SimDuration) -> FlowEntry {
        self.hard_timeout = Some(timeout);
        self
    }

    /// Builder: requests a flow-removed notification on expiry/delete.
    pub fn with_notify(mut self, notify: bool) -> FlowEntry {
        self.notify_when_removed = notify;
        self
    }

    /// `true` when the controller asked to be told about removal.
    pub fn notify_when_removed(&self) -> bool {
        self.notify_when_removed
    }

    /// Builder: sets the opaque controller cookie.
    pub fn with_cookie(mut self, cookie: u64) -> FlowEntry {
        self.cookie = cookie;
        self
    }

    /// Entry priority (higher wins).
    pub fn priority(&self) -> u16 {
        self.priority
    }

    /// The match of this entry.
    pub fn matcher(&self) -> &FlowMatch {
        &self.matcher
    }

    /// The action list of this entry.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// A shared handle to the action list — what the switch data path
    /// clones per matched packet (reference-count bump, not a list copy).
    pub fn shared_actions(&self) -> Arc<[Action]> {
        Arc::clone(&self.actions)
    }

    /// The controller cookie.
    pub fn cookie(&self) -> u64 {
        self.cookie
    }

    /// Packets matched so far.
    pub fn packet_count(&self) -> u64 {
        self.packets
    }

    /// Bytes matched so far.
    pub fn byte_count(&self) -> u64 {
        self.bytes
    }

    /// Idle timeout, if configured.
    pub fn idle_timeout(&self) -> Option<SimDuration> {
        self.idle_timeout
    }

    /// Hard timeout, if configured.
    pub fn hard_timeout(&self) -> Option<SimDuration> {
        self.hard_timeout
    }

    fn expired(&self, now: SimTime) -> Option<FlowRemovedReason> {
        if let Some(hard) = self.hard_timeout {
            if now.saturating_since(self.created_at) >= hard {
                return Some(FlowRemovedReason::HardTimeout);
            }
        }
        if let Some(idle) = self.idle_timeout {
            if now.saturating_since(self.last_matched) >= idle {
                return Some(FlowRemovedReason::IdleTimeout);
            }
        }
        None
    }
}

/// A priority-ordered flow table with OF 1.0 add/modify/delete semantics.
///
/// Lookup returns the highest-priority matching entry; among equal
/// priorities, the earliest-installed entry wins (deterministic, like a
/// TCAM scan order).
///
/// # Classification index
///
/// Wildcard-free entries (the microflow rules a reactive controller
/// installs per flow) are additionally indexed by their full-tuple
/// [`PacketFields`] key in a deterministic Fx-hashed map, making the
/// common lookup O(1): hash the packet's 12-tuple, then consult only the
/// (usually empty) list of *wildcard* entries that precede the exact hit
/// in scan order. The linear scan remains as the general path — and as
/// the semantics reference: [`baseline::LinearFlowTable`] is the
/// scan-only implementation, and a differential proptest drives both
/// through random add/delete/lookup/expire interleavings to prove the
/// index changes nothing observable.
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    // Sorted by descending priority; stable within a priority. This order
    // (the "scan order") *is* the match precedence.
    entries: Vec<FlowEntry>,
    // Full-tuple key → scan-order-first wildcard-free entry with that key.
    // Deterministic hasher; only point queries, never iterated.
    exact: HashMap<PacketFields, usize, FxBuildHasher>,
    // Scan-order slots of entries with at least one wildcarded field.
    wildcard_slots: Vec<usize>,
    lookups: u64,
    misses: u64,
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total lookups performed.
    pub fn lookup_count(&self) -> u64 {
        self.lookups
    }

    /// Lookups that matched no entry (table misses → packet-in).
    pub fn miss_count(&self) -> u64 {
        self.misses
    }

    /// Iterates over entries in priority order.
    pub fn iter(&self) -> std::slice::Iter<'_, FlowEntry> {
        self.entries.iter()
    }

    /// Installs `entry` at `now`. An existing entry with identical match
    /// and priority is replaced (OF 1.0 `OFPFC_ADD` overlap semantics
    /// without `CHECK_OVERLAP`), preserving nothing of the old counters.
    pub fn add(&mut self, mut entry: FlowEntry, now: SimTime) {
        entry.created_at = now;
        entry.last_matched = now;
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.priority == entry.priority && e.matcher == entry.matcher)
        {
            // Same slot, same matcher: the index stays valid as-is.
            *existing = entry;
            return;
        }
        // Insert after the last entry with priority >= new priority.
        let pos = self
            .entries
            .partition_point(|e| e.priority >= entry.priority);
        self.entries.insert(pos, entry);
        self.reindex();
    }

    /// Rebuilds the exact-match index and the wildcard slot list after a
    /// structural change (slots shift on insert/remove). O(n) per
    /// flow-mod — negligible next to the per-packet lookups it buys.
    fn reindex(&mut self) {
        self.exact.clear();
        self.wildcard_slots.clear();
        for (i, e) in self.entries.iter().enumerate() {
            match e.matcher.exact_key() {
                // First scan-order slot per key wins, mirroring the scan.
                Some(key) => {
                    self.exact.entry(key).or_insert(i);
                }
                None => self.wildcard_slots.push(i),
            }
        }
    }

    /// Modifies the actions of all entries matched (strictly or loosely) by
    /// `matcher`; returns how many were updated. When none match, OF 1.0
    /// says modify behaves like add — the caller decides that (the switch
    /// does).
    pub fn modify(
        &mut self,
        matcher: &FlowMatch,
        priority: Option<u16>,
        actions: &[Action],
    ) -> usize {
        let mut n = 0;
        let mut shared: Option<Arc<[Action]>> = None;
        for e in &mut self.entries {
            let strict_ok = priority.is_none_or(|p| e.priority == p);
            if strict_ok && matcher.subsumes(&e.matcher) {
                e.actions = shared.get_or_insert_with(|| actions.into()).clone();
                n += 1;
            }
        }
        n
    }

    /// Deletes entries. With `strict`, only the exact (match, priority)
    /// entry is removed; otherwise every entry subsumed by `matcher` goes.
    /// Returns the removed entries.
    pub fn delete(
        &mut self,
        matcher: &FlowMatch,
        priority: Option<u16>,
        strict: bool,
    ) -> Vec<FlowEntry> {
        let hit = |e: &FlowEntry| {
            if strict {
                priority.is_none_or(|p| e.priority == p) && e.matcher == *matcher
            } else {
                matcher.subsumes(&e.matcher)
            }
        };
        // The common flow-mod deletes nothing (or the table is clean):
        // skip the rebuild and return without allocating.
        if !self.entries.iter().any(hit) {
            return Vec::new();
        }
        let old = std::mem::take(&mut self.entries);
        let mut removed = Vec::new();
        self.entries = Vec::with_capacity(old.len());
        for e in old {
            if hit(&e) {
                removed.push(e); // moved, not cloned
            } else {
                self.entries.push(e);
            }
        }
        self.reindex();
        removed
    }

    /// Finds the best entry for `fields`, updating its counters and idle
    /// timestamp. Expired entries are skipped (lazily collected by
    /// [`FlowTable::expire`]).
    pub fn lookup(&mut self, fields: &PacketFields, now: SimTime) -> Option<&FlowEntry> {
        self.lookup_inner(fields, 0, now)
    }

    /// Like [`FlowTable::lookup`] but also charges `bytes` to the entry.
    pub fn lookup_counted(
        &mut self,
        fields: &PacketFields,
        bytes: usize,
        now: SimTime,
    ) -> Option<&FlowEntry> {
        self.lookup_inner(fields, bytes as u64, now)
    }

    /// The single classification path behind [`FlowTable::lookup`] and
    /// [`FlowTable::lookup_counted`].
    fn lookup_inner(
        &mut self,
        fields: &PacketFields,
        bytes: u64,
        now: SimTime,
    ) -> Option<&FlowEntry> {
        self.lookups += 1;
        let slot = self.classify(fields, now);
        match slot {
            Some(i) => {
                let e = &mut self.entries[i];
                e.packets += 1;
                e.bytes += bytes;
                e.last_matched = now;
                Some(&self.entries[i])
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// The winning (live, matching) slot for `fields`, or `None` on a
    /// table miss — the indexed equivalent of the priority-ordered scan.
    fn classify(&self, fields: &PacketFields, now: SimTime) -> Option<usize> {
        match self.exact.get(fields).copied() {
            // A wildcard-free entry matches the tuple exactly. Any entry
            // beating it sits strictly earlier in scan order, and — since
            // the index maps each key to its scan-order-first exact slot —
            // such an entry must carry a wildcard. Scan only those.
            Some(i) if self.entries[i].expired(now).is_none() => Some(
                self.wildcard_slots
                    .iter()
                    .copied()
                    .take_while(|&j| j < i)
                    .find(|&j| {
                        let e = &self.entries[j];
                        e.expired(now).is_none() && e.matcher.matches(fields)
                    })
                    .unwrap_or(i),
            ),
            // The indexed entry has lazily expired: a same-key duplicate
            // at lower priority may hide behind it, so fall back to the
            // full reference scan (rare — the next `expire` sweep removes
            // the entry and restores the fast path).
            Some(_) => self
                .entries
                .iter()
                .position(|e| e.expired(now).is_none() && e.matcher.matches(fields)),
            // No exact entry carries this tuple; only wildcard entries
            // can match.
            None => self.wildcard_slots.iter().copied().find(|&j| {
                let e = &self.entries[j];
                e.expired(now).is_none() && e.matcher.matches(fields)
            }),
        }
    }

    /// Removes expired entries, returning them with their removal reasons.
    pub fn expire(&mut self, now: SimTime) -> Vec<(FlowEntry, FlowRemovedReason)> {
        // Steady state: nothing has expired — no allocation, no rebuild.
        if !self.entries.iter().any(|e| e.expired(now).is_some()) {
            return Vec::new();
        }
        let old = std::mem::take(&mut self.entries);
        let mut removed = Vec::new();
        self.entries = Vec::with_capacity(old.len());
        for e in old {
            match e.expired(now) {
                Some(reason) => removed.push((e, reason)), // moved, not cloned
                None => self.entries.push(e),
            }
        }
        self.reindex();
        removed
    }
}

/// The retired scan-only flow table, kept as the semantics oracle for the
/// indexed [`FlowTable`].
///
/// Every operation is the pre-index implementation verbatim: one
/// priority-ordered linear scan, no auxiliary structures. The workspace
/// differential proptest (`prop_flow_table.rs`) drives this and the
/// indexed table through identical random interleavings of
/// add/modify/delete/lookup/expire and asserts step-for-step equality of
/// results, counters and table contents.
#[doc(hidden)]
pub mod baseline {
    use super::*;

    /// Scan-only reference implementation of [`FlowTable`].
    #[derive(Debug, Clone, Default)]
    pub struct LinearFlowTable {
        entries: Vec<FlowEntry>,
        lookups: u64,
        misses: u64,
    }

    impl LinearFlowTable {
        /// Creates an empty table.
        pub fn new() -> LinearFlowTable {
            LinearFlowTable::default()
        }

        /// Number of installed entries.
        pub fn len(&self) -> usize {
            self.entries.len()
        }

        /// `true` when the table has no entries.
        pub fn is_empty(&self) -> bool {
            self.entries.is_empty()
        }

        /// Total lookups performed.
        pub fn lookup_count(&self) -> u64 {
            self.lookups
        }

        /// Lookups that matched no entry.
        pub fn miss_count(&self) -> u64 {
            self.misses
        }

        /// Iterates over entries in priority order.
        pub fn iter(&self) -> std::slice::Iter<'_, FlowEntry> {
            self.entries.iter()
        }

        /// See [`FlowTable::add`].
        pub fn add(&mut self, mut entry: FlowEntry, now: SimTime) {
            entry.created_at = now;
            entry.last_matched = now;
            if let Some(existing) = self
                .entries
                .iter_mut()
                .find(|e| e.priority == entry.priority && e.matcher == entry.matcher)
            {
                *existing = entry;
                return;
            }
            let pos = self
                .entries
                .partition_point(|e| e.priority >= entry.priority);
            self.entries.insert(pos, entry);
        }

        /// See [`FlowTable::modify`].
        pub fn modify(
            &mut self,
            matcher: &FlowMatch,
            priority: Option<u16>,
            actions: &[Action],
        ) -> usize {
            let mut n = 0;
            let mut shared: Option<Arc<[Action]>> = None;
            for e in &mut self.entries {
                let strict_ok = priority.is_none_or(|p| e.priority == p);
                if strict_ok && matcher.subsumes(&e.matcher) {
                    e.actions = shared.get_or_insert_with(|| actions.into()).clone();
                    n += 1;
                }
            }
            n
        }

        /// See [`FlowTable::delete`].
        pub fn delete(
            &mut self,
            matcher: &FlowMatch,
            priority: Option<u16>,
            strict: bool,
        ) -> Vec<FlowEntry> {
            let mut removed = Vec::new();
            self.entries.retain(|e| {
                let hit = if strict {
                    priority.is_none_or(|p| e.priority == p) && e.matcher == *matcher
                } else {
                    matcher.subsumes(&e.matcher)
                };
                if hit {
                    removed.push(e.clone());
                    false
                } else {
                    true
                }
            });
            removed
        }

        /// See [`FlowTable::lookup`].
        pub fn lookup(&mut self, fields: &PacketFields, now: SimTime) -> Option<&FlowEntry> {
            self.lookup_counted(fields, 0, now)
        }

        /// See [`FlowTable::lookup_counted`].
        pub fn lookup_counted(
            &mut self,
            fields: &PacketFields,
            bytes: usize,
            now: SimTime,
        ) -> Option<&FlowEntry> {
            self.lookups += 1;
            let idx = self
                .entries
                .iter()
                .position(|e| e.expired(now).is_none() && e.matcher.matches(fields));
            match idx {
                Some(i) => {
                    let e = &mut self.entries[i];
                    e.packets += 1;
                    e.bytes += bytes as u64;
                    e.last_matched = now;
                    Some(&self.entries[i])
                }
                None => {
                    self.misses += 1;
                    None
                }
            }
        }

        /// See [`FlowTable::expire`].
        pub fn expire(&mut self, now: SimTime) -> Vec<(FlowEntry, FlowRemovedReason)> {
            let mut removed = Vec::new();
            self.entries.retain(|e| match e.expired(now) {
                Some(reason) => {
                    removed.push((e.clone(), reason));
                    false
                }
                None => true,
            });
            removed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ports::OfPort;
    use netco_net::MacAddr;

    fn out(p: u16) -> Vec<Action> {
        vec![Action::Output(OfPort::Physical(p))]
    }

    fn fields_to(mac: MacAddr) -> PacketFields {
        PacketFields {
            dl_dst: mac,
            ..PacketFields::default()
        }
    }

    #[test]
    fn priority_order_wins() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(10, FlowMatch::any(), out(1)), SimTime::ZERO);
        t.add(
            FlowEntry::new(100, FlowMatch::any().with_dl_dst(MacAddr::local(5)), out(2)),
            SimTime::ZERO,
        );
        let e = t
            .lookup(&fields_to(MacAddr::local(5)), SimTime::ZERO)
            .unwrap();
        assert_eq!(e.actions(), out(2).as_slice());
        let e = t
            .lookup(&fields_to(MacAddr::local(6)), SimTime::ZERO)
            .unwrap();
        assert_eq!(e.actions(), out(1).as_slice());
    }

    #[test]
    fn equal_priority_first_added_wins() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(10, FlowMatch::any(), out(1)), SimTime::ZERO);
        t.add(
            FlowEntry::new(10, FlowMatch::any().with_in_port(0), out(2)),
            SimTime::ZERO,
        );
        let e = t.lookup(&PacketFields::default(), SimTime::ZERO).unwrap();
        assert_eq!(e.actions(), out(1).as_slice());
    }

    #[test]
    fn identical_add_replaces() {
        let mut t = FlowTable::new();
        let m = FlowMatch::any().with_in_port(3);
        t.add(FlowEntry::new(10, m.clone(), out(1)), SimTime::ZERO);
        t.add(FlowEntry::new(10, m, out(2)), SimTime::ZERO);
        assert_eq!(t.len(), 1);
        let f = PacketFields {
            in_port: 3,
            ..PacketFields::default()
        };
        assert_eq!(
            t.lookup(&f, SimTime::ZERO).unwrap().actions(),
            out(2).as_slice()
        );
    }

    #[test]
    fn miss_counting() {
        let mut t = FlowTable::new();
        t.add(
            FlowEntry::new(1, FlowMatch::any().with_in_port(9), out(1)),
            SimTime::ZERO,
        );
        assert!(t.lookup(&PacketFields::default(), SimTime::ZERO).is_none());
        assert_eq!(t.miss_count(), 1);
        assert_eq!(t.lookup_count(), 1);
    }

    #[test]
    fn counters_accumulate() {
        let mut t = FlowTable::new();
        t.add(FlowEntry::new(1, FlowMatch::any(), out(1)), SimTime::ZERO);
        t.lookup_counted(&PacketFields::default(), 100, SimTime::ZERO);
        t.lookup_counted(&PacketFields::default(), 200, SimTime::ZERO);
        let e = t.iter().next().unwrap();
        assert_eq!(e.packet_count(), 2);
        assert_eq!(e.byte_count(), 300);
    }

    #[test]
    fn hard_timeout_expires() {
        let mut t = FlowTable::new();
        t.add(
            FlowEntry::new(1, FlowMatch::any(), out(1))
                .with_hard_timeout(SimDuration::from_secs(1)),
            SimTime::ZERO,
        );
        let just_before = SimTime::ZERO + SimDuration::from_millis(999);
        assert!(t.lookup(&PacketFields::default(), just_before).is_some());
        let after = SimTime::ZERO + SimDuration::from_secs(1);
        assert!(t.lookup(&PacketFields::default(), after).is_none());
        let removed = t.expire(after);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].1, FlowRemovedReason::HardTimeout);
        assert!(t.is_empty());
    }

    #[test]
    fn idle_timeout_refreshes_on_match() {
        let mut t = FlowTable::new();
        t.add(
            FlowEntry::new(1, FlowMatch::any(), out(1))
                .with_idle_timeout(SimDuration::from_secs(1)),
            SimTime::ZERO,
        );
        let f = PacketFields::default();
        // Touch at 0.9 s, so expiry moves to 1.9 s.
        assert!(t
            .lookup(&f, SimTime::ZERO + SimDuration::from_millis(900))
            .is_some());
        assert!(t
            .lookup(&f, SimTime::ZERO + SimDuration::from_millis(1800))
            .is_some());
        let removed = t.expire(SimTime::ZERO + SimDuration::from_millis(1700));
        assert!(removed.is_empty());
        assert!(t
            .lookup(&f, SimTime::ZERO + SimDuration::from_millis(2900))
            .is_none());
        let removed = t.expire(SimTime::ZERO + SimDuration::from_millis(2900));
        assert_eq!(removed[0].1, FlowRemovedReason::IdleTimeout);
    }

    #[test]
    fn strict_and_loose_delete() {
        let mut t = FlowTable::new();
        let specific = FlowMatch::any().with_dl_type(0x0800).with_nw_proto(6);
        t.add(FlowEntry::new(5, specific.clone(), out(1)), SimTime::ZERO);
        t.add(
            FlowEntry::new(7, FlowMatch::any().with_dl_type(0x0800), out(2)),
            SimTime::ZERO,
        );
        // Strict delete with the general match removes only the exact entry.
        let removed = t.delete(&FlowMatch::any().with_dl_type(0x0800), Some(7), true);
        assert_eq!(removed.len(), 1);
        assert_eq!(t.len(), 1);
        // Loose delete with a general match removes subsumed entries.
        let removed = t.delete(&FlowMatch::any().with_dl_type(0x0800), None, false);
        assert_eq!(removed.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn modify_rewrites_actions() {
        let mut t = FlowTable::new();
        t.add(
            FlowEntry::new(5, FlowMatch::any().with_in_port(1), out(1)),
            SimTime::ZERO,
        );
        let n = t.modify(&FlowMatch::any(), None, &out(9));
        assert_eq!(n, 1);
        let f = PacketFields {
            in_port: 1,
            ..PacketFields::default()
        };
        assert_eq!(
            t.lookup(&f, SimTime::ZERO).unwrap().actions(),
            out(9).as_slice()
        );
    }
}
