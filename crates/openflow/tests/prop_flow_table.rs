//! Differential property test: the indexed [`FlowTable`] is observably
//! identical to the retired scan-only [`baseline::LinearFlowTable`].
//!
//! Both tables are driven through the same random interleaving of
//! add/modify/delete/lookup/expire with advancing time, over small value
//! domains (so exact keys collide, wildcards overlap exact entries at
//! every priority, and timeouts actually fire). After every step the
//! observable result *and* the complete table state — entry order,
//! per-entry counters and timestamps, lookup/miss totals — must agree.

use netco_net::MacAddr;
use netco_openflow::baseline::LinearFlowTable;
use netco_openflow::{Action, FlowEntry, FlowMatch, FlowTable, OfPort, PacketFields};
use netco_sim::{SimDuration, SimTime};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// One scripted operation against both tables.
#[derive(Debug, Clone)]
enum Op {
    Add {
        matcher: FlowMatch,
        priority: u16,
        out_port: u16,
        idle_ms: Option<u64>,
        hard_ms: Option<u64>,
    },
    Delete {
        matcher: FlowMatch,
        priority: Option<u16>,
        strict: bool,
    },
    Modify {
        matcher: FlowMatch,
        priority: Option<u16>,
        out_port: u16,
    },
    Lookup {
        fields: PacketFields,
        bytes: usize,
    },
    Expire,
}

/// Small domains so keys collide and wildcards overlap exact entries.
fn arb_fields() -> impl Strategy<Value = PacketFields> {
    (
        0u16..3, // in_port
        0u32..3, // dl_src index
        0u32..4, // dl_dst index
        0u8..3,  // nw_proto selector
        0u8..3,  // ip low octet selector
        0u16..2, // tp_dst selector
    )
        .prop_map(|(in_port, src, dst, proto, ip, tp)| PacketFields {
            in_port,
            dl_src: MacAddr::local(src),
            dl_dst: MacAddr::local(dst),
            dl_type: 0x0800,
            nw_proto: [1, 6, 17][proto as usize],
            nw_src: Ipv4Addr::new(10, 0, 0, ip + 1),
            nw_dst: Ipv4Addr::new(10, 0, 0, 3 - ip),
            tp_src: 5000,
            tp_dst: 6000 + tp,
            ..PacketFields::default()
        })
}

/// Either the wildcard-free match for a generated tuple (exercising the
/// exact index) or a random wildcard subset of it (exercising the scan
/// path and the exact/wildcard precedence interplay).
fn arb_matcher() -> impl Strategy<Value = FlowMatch> {
    (
        arb_fields(),
        0u16..=0x0fff,
        proptest::arbitrary::any::<bool>(),
    )
        .prop_map(|(fields, mask, exact)| {
            let full = FlowMatch::exact(&fields);
            if exact {
                return full;
            }
            // Keep each concrete field iff its mask bit is set; bit 12
            // cleared means mask 0 is possible → FlowMatch::any().
            FlowMatch {
                in_port: full.in_port.filter(|_| mask & 0x001 != 0),
                dl_src: full.dl_src.filter(|_| mask & 0x002 != 0),
                dl_dst: full.dl_dst.filter(|_| mask & 0x004 != 0),
                dl_vlan: full.dl_vlan.filter(|_| mask & 0x008 != 0),
                dl_vlan_pcp: full.dl_vlan_pcp.filter(|_| mask & 0x010 != 0),
                dl_type: full.dl_type.filter(|_| mask & 0x020 != 0),
                nw_tos: full.nw_tos.filter(|_| mask & 0x040 != 0),
                nw_proto: full.nw_proto.filter(|_| mask & 0x080 != 0),
                nw_src: full.nw_src.filter(|_| mask & 0x100 != 0),
                nw_dst: full.nw_dst.filter(|_| mask & 0x200 != 0),
                tp_src: full.tp_src.filter(|_| mask & 0x400 != 0),
                tp_dst: full.tp_dst.filter(|_| mask & 0x800 != 0),
            }
        })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            arb_matcher(),
            0u16..4,
            1u16..4,
            proptest::option::of(1u64..5),
            proptest::option::of(1u64..5),
        )
            .prop_map(|(matcher, priority, out_port, idle_ms, hard_ms)| Op::Add {
                matcher,
                priority,
                out_port,
                idle_ms,
                hard_ms,
            }),
        (
            arb_matcher(),
            proptest::option::of(0u16..4),
            proptest::arbitrary::any::<bool>()
        )
            .prop_map(|(matcher, priority, strict)| Op::Delete {
                matcher,
                priority,
                strict,
            }),
        (arb_matcher(), proptest::option::of(0u16..4), 5u16..8).prop_map(
            |(matcher, priority, out_port)| Op::Modify {
                matcher,
                priority,
                out_port,
            }
        ),
        (arb_fields(), 0usize..2000).prop_map(|(fields, bytes)| Op::Lookup { fields, bytes }),
        (arb_fields(), 0usize..2000).prop_map(|(fields, bytes)| Op::Lookup { fields, bytes }),
        (arb_fields(), 0usize..2000).prop_map(|(fields, bytes)| Op::Lookup { fields, bytes }),
        Just(Op::Expire),
    ]
}

fn out(p: u16) -> Vec<Action> {
    vec![Action::Output(OfPort::Physical(p))]
}

fn entry(
    priority: u16,
    matcher: FlowMatch,
    p: u16,
    idle: Option<u64>,
    hard: Option<u64>,
) -> FlowEntry {
    let mut e = FlowEntry::new(priority, matcher, out(p));
    if let Some(ms) = idle {
        e = e.with_idle_timeout(SimDuration::from_millis(ms));
    }
    if let Some(ms) = hard {
        e = e.with_hard_timeout(SimDuration::from_millis(ms));
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn indexed_table_matches_linear_baseline(
        ops in proptest::collection::vec((arb_op(), 0u64..1500), 1..60),
    ) {
        let mut indexed = FlowTable::new();
        let mut linear = LinearFlowTable::new();
        let mut now = SimTime::ZERO;
        for (step, (op, advance_us)) in ops.into_iter().enumerate() {
            now += SimDuration::from_micros(advance_us);
            match op {
                Op::Add { matcher, priority, out_port, idle_ms, hard_ms } => {
                    let e = entry(priority, matcher, out_port, idle_ms, hard_ms);
                    indexed.add(e.clone(), now);
                    linear.add(e, now);
                }
                Op::Delete { matcher, priority, strict } => {
                    let a = indexed.delete(&matcher, priority, strict);
                    let b = linear.delete(&matcher, priority, strict);
                    prop_assert_eq!(a, b, "delete diverged at step {}", step);
                }
                Op::Modify { matcher, priority, out_port } => {
                    let a = indexed.modify(&matcher, priority, &out(out_port));
                    let b = linear.modify(&matcher, priority, &out(out_port));
                    prop_assert_eq!(a, b, "modify count diverged at step {}", step);
                }
                Op::Lookup { fields, bytes } => {
                    let a = indexed.lookup_counted(&fields, bytes, now).cloned();
                    let b = linear.lookup_counted(&fields, bytes, now).cloned();
                    prop_assert_eq!(a, b, "lookup diverged at step {}", step);
                }
                Op::Expire => {
                    let a = indexed.expire(now);
                    let b = linear.expire(now);
                    prop_assert_eq!(a, b, "expiry order diverged at step {}", step);
                }
            }
            // Full-state equality after every step: entry order, actions,
            // counters, timestamps, and the aggregate statistics.
            let a: Vec<FlowEntry> = indexed.iter().cloned().collect();
            let b: Vec<FlowEntry> = linear.iter().cloned().collect();
            prop_assert_eq!(a, b, "table contents diverged at step {}", step);
            prop_assert_eq!(indexed.len(), linear.len());
            prop_assert_eq!(indexed.lookup_count(), linear.lookup_count());
            prop_assert_eq!(indexed.miss_count(), linear.miss_count());
        }
    }

    #[test]
    fn lookup_without_wildcards_hits_index(
        fields in arb_fields(),
        bytes in 0usize..5000,
    ) {
        // A purely exact-match table: the indexed and baseline tables must
        // agree on the hit and its charged counters.
        let mut indexed = FlowTable::new();
        let mut linear = LinearFlowTable::new();
        let e = entry(100, FlowMatch::exact(&fields), 2, None, None);
        indexed.add(e.clone(), SimTime::ZERO);
        linear.add(e, SimTime::ZERO);
        let a = indexed.lookup_counted(&fields, bytes, SimTime::ZERO).cloned();
        let b = linear.lookup_counted(&fields, bytes, SimTime::ZERO).cloned();
        prop_assert_eq!(a.as_ref(), b.as_ref());
        prop_assert_eq!(a.expect("exact hit").byte_count(), bytes as u64);
    }
}
