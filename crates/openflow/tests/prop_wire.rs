//! Property tests: the OpenFlow 1.0 wire codec round-trips arbitrary
//! messages, flow-match semantics are consistent, and decoding never
//! panics.

use bytes::Bytes;
use netco_net::MacAddr;
use netco_openflow::canonical::{canonicalize, Canonical};
use netco_openflow::{
    wire, Action, FlowMatch, FlowModCommand, OfMessage, OfPort, PacketFields, PacketInReason,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_port() -> impl Strategy<Value = OfPort> {
    prop_oneof![
        (0u16..=0xff00).prop_map(OfPort::Physical),
        Just(OfPort::InPort),
        Just(OfPort::Flood),
        Just(OfPort::All),
        Just(OfPort::Controller),
        Just(OfPort::None),
    ]
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        arb_port().prop_map(Action::Output),
        arb_mac().prop_map(Action::SetDlSrc),
        arb_mac().prop_map(Action::SetDlDst),
        (0u16..4096).prop_map(Action::SetVlanVid),
        Just(Action::StripVlan),
        arb_ip().prop_map(Action::SetNwSrc),
        arb_ip().prop_map(Action::SetNwDst),
        any::<u16>().prop_map(Action::SetTpSrc),
        any::<u16>().prop_map(Action::SetTpDst),
    ]
}

fn arb_match() -> impl Strategy<Value = FlowMatch> {
    (
        proptest::option::of(any::<u16>()),
        proptest::option::of(arb_mac()),
        proptest::option::of(arb_mac()),
        proptest::option::of(any::<u16>()),
        proptest::option::of(any::<u8>()),
        proptest::option::of(any::<u16>()),
        (
            proptest::option::of(any::<u8>()),
            proptest::option::of(any::<u8>()),
            proptest::option::of(arb_ip()),
            proptest::option::of(arb_ip()),
            proptest::option::of(any::<u16>()),
            proptest::option::of(any::<u16>()),
        ),
    )
        .prop_map(
            |(in_port, dl_src, dl_dst, dl_vlan, dl_vlan_pcp, dl_type, rest)| {
                let (nw_tos, nw_proto, nw_src, nw_dst, tp_src, tp_dst) = rest;
                FlowMatch {
                    in_port,
                    dl_src,
                    dl_dst,
                    dl_vlan,
                    dl_vlan_pcp,
                    dl_type,
                    nw_tos,
                    nw_proto,
                    nw_src,
                    nw_dst,
                    tp_src,
                    tp_dst,
                }
            },
        )
}

fn arb_fields() -> impl Strategy<Value = PacketFields> {
    (
        any::<u16>(),
        arb_mac(),
        arb_mac(),
        any::<u16>(),
        any::<u8>(),
        any::<u16>(),
        (
            arb_ip(),
            arb_ip(),
            any::<u8>(),
            any::<u8>(),
            any::<u16>(),
            any::<u16>(),
        ),
    )
        .prop_map(|(in_port, dl_src, dl_dst, dl_vlan, pcp, dl_type, rest)| {
            let (nw_src, nw_dst, nw_tos, nw_proto, tp_src, tp_dst) = rest;
            PacketFields {
                in_port,
                dl_src,
                dl_dst,
                dl_vlan,
                dl_vlan_pcp: pcp,
                dl_type,
                nw_tos,
                nw_proto,
                nw_src,
                nw_dst,
                tp_src,
                tp_dst,
            }
        })
}

proptest! {
    #[test]
    fn flow_mod_round_trip(
        matcher in arb_match(),
        priority in any::<u16>(),
        idle in any::<u16>(),
        hard in any::<u16>(),
        cookie in any::<u64>(),
        notify in any::<bool>(),
        actions in proptest::collection::vec(arb_action(), 0..6),
        buffer in proptest::option::of(0u32..u32::MAX - 1),
        xid in any::<u32>(),
    ) {
        let msg = OfMessage::FlowMod {
            command: FlowModCommand::Add,
            matcher,
            priority,
            idle_timeout_s: idle,
            hard_timeout_s: hard,
            cookie,
            notify_when_removed: notify,
            actions,
            buffer_id: buffer,
        };
        let bytes = wire::encode(&msg, xid);
        let (back, back_xid) = wire::decode(&bytes).unwrap();
        prop_assert_eq!(back, msg);
        prop_assert_eq!(back_xid, xid);
    }

    #[test]
    fn packet_in_out_round_trip(
        in_port in any::<u16>(),
        data in proptest::collection::vec(any::<u8>(), 0..512),
        buffered in any::<bool>(),
        actions in proptest::collection::vec(arb_action(), 0..4),
    ) {
        let data = Bytes::from(data);
        let pi = OfMessage::PacketIn {
            buffer_id: buffered.then_some(42),
            in_port,
            reason: PacketInReason::NoMatch,
            data: data.clone(),
        };
        let (b1, _) = wire::decode(&wire::encode(&pi, 1)).unwrap();
        prop_assert_eq!(b1, pi);
        let po = OfMessage::PacketOut {
            buffer_id: None,
            in_port,
            actions,
            data,
        };
        let (b2, _) = wire::decode(&wire::encode(&po, 2)).unwrap();
        prop_assert_eq!(b2, po);
    }

    #[test]
    fn wildcard_matches_whatever_concrete_matches(
        m in arb_match(),
        fields in arb_fields(),
    ) {
        // Any match that accepts `fields` must still accept it after
        // wildcarding one more field (monotonicity of refinement).
        if m.matches(&fields) {
            let mut general = m.clone();
            general.dl_dst = None;
            prop_assert!(general.matches(&fields));
            let mut general = m.clone();
            general.in_port = None;
            prop_assert!(general.matches(&fields));
            let mut general = m.clone();
            general.nw_src = None;
            prop_assert!(general.matches(&fields));
        }
    }

    #[test]
    fn subsumption_implies_match_implication(
        general in arb_match(),
        fields in arb_fields(),
    ) {
        // Build a specific match from the fields themselves: it matches
        // them by construction; if `general` subsumes it, `general` must
        // match too.
        let specific = FlowMatch {
            in_port: Some(fields.in_port),
            dl_src: Some(fields.dl_src),
            dl_dst: Some(fields.dl_dst),
            dl_vlan: Some(fields.dl_vlan),
            dl_vlan_pcp: Some(fields.dl_vlan_pcp),
            dl_type: Some(fields.dl_type),
            nw_tos: Some(fields.nw_tos),
            nw_proto: Some(fields.nw_proto),
            nw_src: Some(fields.nw_src),
            nw_dst: Some(fields.nw_dst),
            tp_src: Some(fields.tp_src),
            tp_dst: Some(fields.tp_dst),
        };
        prop_assert!(specific.matches(&fields));
        if general.subsumes(&specific) {
            prop_assert!(general.matches(&fields));
        }
    }

    // The control-plane vote key (the canonical wire form, see
    // `netco_openflow::canonical`) must be invariant under every field
    // honest replicas legitimately disagree on — xid, buffer id, action
    // order — and a fixpoint, so voting on already-canonical bytes is
    // consistent with voting on raw controller output.
    #[test]
    fn canonical_flow_mod_key_survives_cosmetic_variation(
        matcher in arb_match(),
        priority in any::<u16>(),
        cookie in any::<u64>(),
        notify in any::<bool>(),
        actions in proptest::collection::vec(arb_action(), 0..6),
        rot in any::<usize>(),
        xid1 in any::<u32>(),
        xid2 in any::<u32>(),
        buf1 in proptest::option::of(0u32..u32::MAX - 1),
        buf2 in proptest::option::of(0u32..u32::MAX - 1),
    ) {
        let mk = |actions: Vec<Action>, buffer_id: Option<u32>| OfMessage::FlowMod {
            command: FlowModCommand::Add,
            matcher: matcher.clone(),
            priority,
            idle_timeout_s: 0,
            hard_timeout_s: 0,
            cookie,
            notify_when_removed: notify,
            actions,
            buffer_id,
        };
        let mut permuted = actions.clone();
        if !permuted.is_empty() {
            let n = permuted.len();
            permuted.rotate_left(rot % n);
        }
        let a = canonicalize(&wire::encode(&mk(actions, buf1), xid1));
        let b = canonicalize(&wire::encode(&mk(permuted, buf2), xid2));
        prop_assert_eq!(&a, &b, "vote key must ignore xid/buffer/action order");
        let Canonical::Votable(canon) = a else {
            return Err(TestCaseError::fail("flow-mod must be votable"));
        };
        prop_assert_eq!(
            canonicalize(&canon),
            Canonical::Votable(canon.clone()),
            "canonicalization must be idempotent"
        );
        let (_, xid) = wire::decode(&canon).expect("canonical bytes must decode");
        prop_assert_eq!(xid, 0);
    }

    #[test]
    fn canonical_packet_out_key_survives_cosmetic_variation(
        in_port in any::<u16>(),
        data in proptest::collection::vec(any::<u8>(), 0..256),
        actions in proptest::collection::vec(arb_action(), 0..4),
        rot in any::<usize>(),
        xid1 in any::<u32>(),
        xid2 in any::<u32>(),
        buf in proptest::option::of(0u32..u32::MAX - 1),
    ) {
        let data = Bytes::from(data);
        let mk = |actions: Vec<Action>, buffer_id: Option<u32>| OfMessage::PacketOut {
            buffer_id,
            in_port,
            actions,
            data: data.clone(),
        };
        let mut permuted = actions.clone();
        if !permuted.is_empty() {
            let n = permuted.len();
            permuted.rotate_left(rot % n);
        }
        let a = canonicalize(&wire::encode(&mk(actions, buf), xid1));
        let b = canonicalize(&wire::encode(&mk(permuted, None), xid2));
        prop_assert_eq!(&a, &b);
        prop_assert!(matches!(a, Canonical::Votable(_)));
    }

    // ...but never under anything that carries a *decision*: two
    // packet-outs with different payloads must key differently, else a
    // corrupted release could ride an honest vote.
    #[test]
    fn canonical_keys_separate_different_payloads(
        in_port in any::<u16>(),
        data1 in proptest::collection::vec(any::<u8>(), 1..128),
        data2 in proptest::collection::vec(any::<u8>(), 1..128),
        xid in any::<u32>(),
    ) {
        prop_assume!(data1 != data2);
        let mk = |data: Vec<u8>| OfMessage::PacketOut {
            buffer_id: None,
            in_port,
            actions: vec![Action::Output(OfPort::Physical(1))],
            data: Bytes::from(data),
        };
        let a = canonicalize(&wire::encode(&mk(data1), xid));
        let b = canonicalize(&wire::encode(&mk(data2), xid));
        prop_assert_ne!(a, b);
    }

    #[test]
    fn wire_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::decode(&bytes);
    }

    #[test]
    fn sniff_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128), port in any::<u16>()) {
        let _ = PacketFields::sniff(&bytes, port);
    }
}
