//! The pure topology index form: nodes, links, host attachment points
//! and MAC-destination route tables, computable without a simulator.
//!
//! A [`TopoGraph`] plays the role [`netco_topo::FatTreeIndex`]
//! plays for the Clos fabric, generalized to arbitrary graphs: every
//! question the campaign engine asks — connectivity, path lengths,
//! stretch, egress ports — is answered on this value, and
//! [`crate::build::build_world`] translates the same indices into a
//! wired [`netco_net::World`] so graph computations and simulated
//! forwarding can never drift apart.

use std::collections::VecDeque;
use std::net::Ipv4Addr;

use netco_net::MacAddr;
use netco_sim::SimDuration;

/// Route-table sentinel: this node has no egress for that host.
pub const NO_ROUTE: u16 = u16::MAX;

/// What a node *is* — the trust label the NetCo-ization transform
/// assigns (generators emit plain routers only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An untrusted plain OpenFlow router.
    Router,
    /// A trusted inband guard: port 0 faces the outside, ports `1..=k`
    /// face the replicas, compare embedded (paper §IX placement).
    Guard {
        /// Replica count of the cell this guard fronts.
        k: usize,
        /// `true` → Detect semantics (k = 2), `false` → Prevent.
        detect: bool,
    },
    /// Untrusted replica `index` (1-based) of a NetCo-ized router; port
    /// `j + 1` faces the cell's guard `j`.
    Replica {
        /// 1-based replica index within the cell.
        index: usize,
    },
}

/// One switch-level node.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoNode {
    /// Human-readable name (also the simulator node name).
    pub name: String,
    /// Trust/role label.
    pub kind: NodeKind,
}

/// One bidirectional switch-switch link with explicit port numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoLink {
    /// First endpoint node index.
    pub a: usize,
    /// Port on `a`.
    pub a_port: u16,
    /// Second endpoint node index.
    pub b: usize,
    /// Port on `b`.
    pub b_port: u16,
    /// Link rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation latency (positive, so the space-parallel
    /// executor's lookahead matrix is always populated).
    pub latency: SimDuration,
}

/// One host attachment point.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoHost {
    /// Node the host attaches to.
    pub attach: usize,
    /// Port on the attach node.
    pub attach_port: u16,
    /// The host NIC's MAC address (routes key on it).
    pub mac: MacAddr,
    /// The host NIC's IPv4 address.
    pub ip: Ipv4Addr,
    /// Access-link rate in bits per second.
    pub rate_bps: u64,
    /// Access-link one-way latency.
    pub latency: SimDuration,
}

/// What sits on one port of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attachment {
    /// Link by index into [`TopoGraph::links`].
    Link(usize),
    /// Host by index into [`TopoGraph::hosts`].
    Host(usize),
}

/// The pure index form of a topology. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoGraph {
    /// Topology class tag (e.g. `"barabasi_albert"`), carried into
    /// campaign reports.
    pub class: String,
    /// Switch-level nodes.
    pub nodes: Vec<TopoNode>,
    /// Switch-switch links.
    pub links: Vec<TopoLink>,
    /// Host attachment points.
    pub hosts: Vec<TopoHost>,
    /// MAC-destination route tables: `routes[node][host]` is the egress
    /// port of `node` for traffic to `host` ([`NO_ROUTE`] = none). Empty
    /// until [`TopoGraph::install_shortest_path_routes`] (or
    /// [`crate::netcoize`]) fills it.
    pub routes: Vec<Vec<u16>>,
}

impl TopoGraph {
    /// An empty graph of the given class.
    pub fn new(class: impl Into<String>) -> TopoGraph {
        TopoGraph {
            class: class.into(),
            nodes: Vec::new(),
            links: Vec::new(),
            hosts: Vec::new(),
            routes: Vec::new(),
        }
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> usize {
        self.nodes.push(TopoNode {
            name: name.into(),
            kind,
        });
        self.nodes.len() - 1
    }

    /// How many ports of `node` are already wired (links + hosts).
    pub fn port_count(&self, node: usize) -> u16 {
        let links = self
            .links
            .iter()
            .filter(|l| l.a == node || l.b == node)
            .count();
        let hosts = self.hosts.iter().filter(|h| h.attach == node).count();
        (links + hosts) as u16
    }

    /// The ports of `node` already in use, sorted.
    fn used_ports(&self, node: usize) -> Vec<u16> {
        let mut used: Vec<u16> = Vec::new();
        for l in &self.links {
            if l.a == node {
                used.push(l.a_port);
            }
            if l.b == node {
                used.push(l.b_port);
            }
        }
        for h in &self.hosts {
            if h.attach == node {
                used.push(h.attach_port);
            }
        }
        used.sort_unstable();
        used
    }

    /// The smallest port of `node` not yet wired. Equal to
    /// [`TopoGraph::port_count`] for densely numbered nodes, but also
    /// correct after an edit (e.g. Watts-Strogatz rewiring) leaves a
    /// hole in the numbering.
    pub fn free_port(&self, node: usize) -> u16 {
        let mut next = 0;
        for p in self.used_ports(node) {
            if p == next {
                next += 1;
            } else if p > next {
                break;
            }
        }
        next
    }

    /// Links `a` and `b` on the next free port of each (ports are
    /// assigned in attachment-insertion order), returning the link index.
    pub fn link(&mut self, a: usize, b: usize, rate_bps: u64, latency: SimDuration) -> usize {
        let a_port = self.free_port(a);
        let b_port = self.free_port(b);
        self.link_with_ports(a, a_port, b, b_port, rate_bps, latency)
    }

    /// Links `a` port `a_port` to `b` port `b_port` with explicit ports
    /// (generators with structured port schemes, e.g. the fat-tree).
    pub fn link_with_ports(
        &mut self,
        a: usize,
        a_port: u16,
        b: usize,
        b_port: u16,
        rate_bps: u64,
        latency: SimDuration,
    ) -> usize {
        assert!(a < self.nodes.len() && b < self.nodes.len(), "unknown node");
        assert!(a != b, "self-loops are not topologies");
        assert!(
            !self.used_ports(a).contains(&a_port) && !self.used_ports(b).contains(&b_port),
            "port already wired"
        );
        self.links.push(TopoLink {
            a,
            a_port,
            b,
            b_port,
            rate_bps,
            latency,
        });
        self.links.len() - 1
    }

    /// Whether `a` and `b` are directly linked.
    pub fn linked(&self, a: usize, b: usize) -> bool {
        self.links
            .iter()
            .any(|l| (l.a == a && l.b == b) || (l.a == b && l.b == a))
    }

    /// Attaches a host to `node` on its next free port.
    pub fn attach_host(
        &mut self,
        node: usize,
        mac: MacAddr,
        ip: Ipv4Addr,
        rate_bps: u64,
        latency: SimDuration,
    ) -> usize {
        let port = self.free_port(node);
        self.attach_host_at(node, port, mac, ip, rate_bps, latency)
    }

    /// Attaches a host to an explicit `(node, port)`.
    pub fn attach_host_at(
        &mut self,
        node: usize,
        port: u16,
        mac: MacAddr,
        ip: Ipv4Addr,
        rate_bps: u64,
        latency: SimDuration,
    ) -> usize {
        assert!(node < self.nodes.len(), "unknown node");
        assert!(!self.used_ports(node).contains(&port), "port already wired");
        self.hosts.push(TopoHost {
            attach: node,
            attach_port: port,
            mac,
            ip,
            rate_bps,
            latency,
        });
        self.hosts.len() - 1
    }

    /// Per-node attachments (links and hosts) sorted by port number.
    /// The *rank* of an attachment in this list is the port index the
    /// NetCo-ization transform keys guard and replica wiring on.
    pub fn attachments(&self, node: usize) -> Vec<(u16, Attachment)> {
        let mut out: Vec<(u16, Attachment)> = Vec::new();
        for (i, l) in self.links.iter().enumerate() {
            if l.a == node {
                out.push((l.a_port, Attachment::Link(i)));
            }
            if l.b == node {
                out.push((l.b_port, Attachment::Link(i)));
            }
        }
        for (i, h) in self.hosts.iter().enumerate() {
            if h.attach == node {
                out.push((h.attach_port, Attachment::Host(i)));
            }
        }
        out.sort_by_key(|&(p, _)| p);
        out
    }

    /// Node adjacency in link-insertion order: `(link index, peer node,
    /// my port)` per entry. Deterministic, so BFS tie-breaks are a pure
    /// function of the graph.
    pub fn adjacency(&self) -> Vec<Vec<(usize, usize, u16)>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for (i, l) in self.links.iter().enumerate() {
            adj[l.a].push((i, l.b, l.a_port));
            adj[l.b].push((i, l.a, l.b_port));
        }
        adj
    }

    /// Connected components over the node graph, each listed in node
    /// order; the components themselves are ordered by smallest member.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let adj = self.adjacency();
        let mut seen = vec![false; self.nodes.len()];
        let mut comps = Vec::new();
        for start in 0..self.nodes.len() {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::from([start]);
            seen[start] = true;
            while let Some(v) = queue.pop_front() {
                comp.push(v);
                for &(_, peer, _) in &adj[v] {
                    if !seen[peer] {
                        seen[peer] = true;
                        queue.push_back(peer);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }

    /// Whether every node reaches every other node.
    pub fn is_connected(&self) -> bool {
        self.nodes.is_empty() || self.components().len() == 1
    }

    /// Installs shortest-path MAC-destination routes: for every host,
    /// BFS over the node graph from its attach node fills
    /// `routes[n][h]` with the egress port of `n` toward `h` (ties
    /// broken by link-insertion order, so the table is deterministic).
    /// Unreachable nodes keep [`NO_ROUTE`].
    pub fn install_shortest_path_routes(&mut self) {
        let adj = self.adjacency();
        let n = self.nodes.len();
        self.routes = vec![vec![NO_ROUTE; self.hosts.len()]; n];
        // BFS once per distinct attach node, shared by co-located hosts.
        let mut toward: Vec<Option<Vec<u16>>> = vec![None; n];
        for h in 0..self.hosts.len() {
            let attach = self.hosts[h].attach;
            if toward[attach].is_none() {
                // ports[v] = egress port of v on its shortest path to
                // `attach`.
                let mut ports = vec![NO_ROUTE; n];
                let mut seen = vec![false; n];
                let mut queue = VecDeque::from([attach]);
                seen[attach] = true;
                while let Some(v) = queue.pop_front() {
                    for &(_, peer, _) in &adj[v] {
                        if !seen[peer] {
                            seen[peer] = true;
                            // peer's egress toward attach is its port on
                            // the v link.
                            let my_port = adj[peer]
                                .iter()
                                .find(|&&(li, p, _)| {
                                    p == v && {
                                        let l = &self.links[li];
                                        (l.a == peer && l.b == v) || (l.b == peer && l.a == v)
                                    }
                                })
                                .map(|&(li, _, _)| {
                                    let l = &self.links[li];
                                    if l.a == peer {
                                        l.a_port
                                    } else {
                                        l.b_port
                                    }
                                })
                                .expect("adjacency is symmetric");
                            // First-found parent wins: BFS order is the
                            // deterministic tie-break.
                            if ports[peer] == NO_ROUTE {
                                ports[peer] = my_port;
                            }
                            queue.push_back(peer);
                        }
                    }
                }
                toward[attach] = Some(ports);
            }
            let ports = toward[attach].as_ref().expect("just filled");
            for (v, &port) in ports.iter().enumerate() {
                self.routes[v][h] = port;
            }
            // The attach node itself delivers on the host port.
            self.routes[attach][h] = self.hosts[h].attach_port;
        }
    }

    /// Walks the installed routes from `src` host to `dst` host and
    /// returns the number of switch hops the frame traverses (guards,
    /// replicas and routers each count as one hop), or `None` when no
    /// route exists. This is the index-form path the built world's
    /// forwarding follows, so hop stretch computed here is the stretch
    /// the simulation pays.
    pub fn route_hops(&self, src: usize, dst: usize) -> Option<usize> {
        if self.routes.is_empty() {
            return None;
        }
        if src == dst {
            return Some(0);
        }
        // port -> (peer node, peer port) lookup per node.
        let find_far = |node: usize, port: u16| -> Option<(usize, u16)> {
            self.links.iter().find_map(|l| {
                if l.a == node && l.a_port == port {
                    Some((l.b, l.b_port))
                } else if l.b == node && l.b_port == port {
                    Some((l.a, l.a_port))
                } else {
                    None
                }
            })
        };
        let dst_attach = (self.hosts[dst].attach, self.hosts[dst].attach_port);
        let mut node = self.hosts[src].attach;
        let mut in_port = self.hosts[src].attach_port;
        let mut hops = 0usize;
        // Generous loop bound: a NetCo cell multiplies hops by 3.
        for _ in 0..self.nodes.len() * 4 + 8 {
            hops += 1;
            let out = match self.nodes[node].kind {
                NodeKind::Router | NodeKind::Replica { .. } => {
                    let p = self.routes[node][dst];
                    if p == NO_ROUTE {
                        return None;
                    }
                    p
                }
                NodeKind::Guard { .. } => {
                    // Ingress on the outward port hubs to the replicas
                    // (any one stands for all — copies are identical);
                    // ingress from a replica releases out the outward
                    // port after the vote.
                    if in_port == 0 {
                        1
                    } else {
                        0
                    }
                }
            };
            if (node, out) == dst_attach {
                return Some(hops);
            }
            let (peer, peer_port) = find_far(node, out)?;
            node = peer;
            in_port = peer_port;
        }
        None
    }

    /// Total switch count (`nodes.len()`, named for report readability).
    pub fn switch_count(&self) -> usize {
        self.nodes.len()
    }

    /// Count of nodes of each kind: `(routers, guards, replicas)`.
    pub fn kind_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for node in &self.nodes {
            match node.kind {
                NodeKind::Router => counts.0 += 1,
                NodeKind::Guard { .. } => counts.1 += 1,
                NodeKind::Replica { .. } => counts.2 += 1,
            }
        }
        counts
    }

    /// An order-sensitive 64-bit digest over every field of the index
    /// form — the "byte-identical `TopoGraph`" witness the determinism
    /// proptests and campaign reports fold on.
    pub fn digest(&self) -> u64 {
        let mut d = fnv1a_str(0xcbf2_9ce4_8422_2325, &self.class);
        for node in &self.nodes {
            d = fnv1a_str(d, &node.name);
            d = fnv1a_u64(
                d,
                match node.kind {
                    NodeKind::Router => 1,
                    NodeKind::Guard { k, detect } => 0x100 | (k as u64) << 16 | detect as u64,
                    NodeKind::Replica { index } => 0x200 | (index as u64) << 16,
                },
            );
        }
        for l in &self.links {
            for v in [
                l.a as u64,
                l.a_port as u64,
                l.b as u64,
                l.b_port as u64,
                l.rate_bps,
                l.latency.as_nanos(),
            ] {
                d = fnv1a_u64(d, v);
            }
        }
        for h in &self.hosts {
            for v in [
                h.attach as u64,
                h.attach_port as u64,
                u64::from(u32::from(h.ip)),
                h.rate_bps,
                h.latency.as_nanos(),
            ] {
                d = fnv1a_u64(d, v);
            }
            d = fnv1a_str(d, &h.mac.to_string());
        }
        for row in &self.routes {
            for &p in row {
                d = fnv1a_u64(d, p as u64);
            }
        }
        d
    }
}

fn fnv1a_u64(mut d: u64, v: u64) -> u64 {
    for byte in v.to_le_bytes() {
        d ^= byte as u64;
        d = d.wrapping_mul(0x1_0000_0000_01b3);
    }
    d
}

fn fnv1a_str(mut d: u64, s: &str) -> u64 {
    for byte in s.as_bytes() {
        d ^= *byte as u64;
        d = d.wrapping_mul(0x1_0000_0000_01b3);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> TopoGraph {
        let mut g = TopoGraph::new("test");
        let a = g.add_node("a", NodeKind::Router);
        let b = g.add_node("b", NodeKind::Router);
        let c = g.add_node("c", NodeKind::Router);
        let us = SimDuration::from_micros(5);
        g.link(a, b, 1_000_000_000, us);
        g.link(b, c, 1_000_000_000, us);
        g.link(a, c, 1_000_000_000, us);
        g.attach_host(
            a,
            MacAddr::local(1),
            Ipv4Addr::new(10, 0, 0, 1),
            1_000_000_000,
            us,
        );
        g.attach_host(
            c,
            MacAddr::local(2),
            Ipv4Addr::new(10, 0, 0, 2),
            1_000_000_000,
            us,
        );
        g
    }

    #[test]
    fn ports_assigned_in_attachment_order() {
        let g = triangle();
        // a: link0 port 0, link2 port 1, host0 port 2.
        assert_eq!(g.links[0].a_port, 0);
        assert_eq!(g.links[2].a_port, 1);
        assert_eq!(g.hosts[0].attach_port, 2);
        // b: link0 port 0, link1 port 1.
        assert_eq!(g.links[0].b_port, 0);
        assert_eq!(g.links[1].a_port, 1);
    }

    #[test]
    fn shortest_path_routes_and_hops() {
        let mut g = triangle();
        g.install_shortest_path_routes();
        // a -> host1 (on c): direct a-c link, port 1 on a.
        assert_eq!(g.routes[0][1], 1);
        // b -> host1: its b-c link, port 1 on b.
        assert_eq!(g.routes[1][1], 1);
        // c delivers host1 on the host port (2).
        assert_eq!(g.routes[2][1], 2);
        // host0 -> host1 crosses a and c: 2 switch hops.
        assert_eq!(g.route_hops(0, 1), Some(2));
        assert_eq!(g.route_hops(1, 0), Some(2));
        assert_eq!(g.route_hops(0, 0), Some(0));
    }

    #[test]
    fn components_split_and_merge() {
        let mut g = triangle();
        assert!(g.is_connected());
        let d = g.add_node("d", NodeKind::Router);
        let e = g.add_node("e", NodeKind::Router);
        g.link(d, e, 1_000_000_000, SimDuration::from_micros(5));
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[1], vec![3, 4]);
        assert!(!g.is_connected());
    }

    #[test]
    fn digest_is_field_sensitive() {
        let mut g = triangle();
        let d0 = g.digest();
        assert_eq!(d0, triangle().digest(), "same build, same digest");
        g.links[1].latency = SimDuration::from_micros(6);
        assert_ne!(d0, g.digest(), "latency change must move the digest");
    }
}
