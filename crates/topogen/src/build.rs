//! Index form → simulator: wire a [`TopoGraph`] into a
//! [`netco_net::World`] with one call.
//!
//! Node-for-node translation of the graph: routers and honest replicas
//! become [`OfSwitch`]es with the graph's route table preinstalled as
//! MAC-destination flows, guards become inband [`GuardSwitch`]es
//! (compare embedded, Detect or Prevent per the node's
//! [`NodeKind::Guard`] label), hosts get [`HostNic`]s with a full
//! neighbor table and whatever device the caller's factory supplies
//! (pinger, responder, traffic source). An optional [`AdversarySpec`]
//! turns a seeded fraction of the replica switches into
//! payload-corrupting [`MaliciousSwitch`]es — the campaign's
//! adversarial-replica axis.

use netco_adversary::{ActivationWindow, Behavior, MaliciousSwitch};
use netco_core::{CompareConfig, GuardConfig, GuardSwitch};
use netco_net::{Device, HostNic, LinkSpec, NeighborTable, NodeId, PortId, World};
use netco_openflow::{Action, FlowEntry, FlowMatch, OfPort, OfSwitch, SwitchConfig};
use netco_sim::SimRng;
use netco_topo::Profile;

use crate::graph::{NodeKind, TopoGraph, NO_ROUTE};

/// Datapath-id block for plain routers (`| node index`).
const ROUTER_DPID_BASE: u64 = 0x7000_0000;
/// Datapath-id block for replica switches (`| node index`).
const REPLICA_DPID_BASE: u64 = 0x4100_0000;

/// Which replica switches misbehave, selected deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversarySpec {
    /// Fraction of `Replica` nodes to corrupt, in `[0, 1]` (count
    /// rounded to nearest).
    pub fraction: f64,
    /// Seed for the site-selection shuffle.
    pub seed: u64,
    /// Corrupt one out of this many matching frames (1 = all).
    pub every_nth: u64,
}

impl AdversarySpec {
    /// The deterministic sorted set of graph node indices this spec
    /// corrupts: a seeded shuffle over the replica nodes, truncated to
    /// the rounded fraction.
    pub fn sites(&self, graph: &TopoGraph) -> Vec<usize> {
        let mut replicas: Vec<usize> = (0..graph.nodes.len())
            .filter(|&n| matches!(graph.nodes[n].kind, NodeKind::Replica { .. }))
            .collect();
        let count = (self.fraction.clamp(0.0, 1.0) * replicas.len() as f64).round() as usize;
        let mut rng = SimRng::new(self.seed).fork(0x6164); // "ad"
        rng.shuffle(&mut replicas);
        replicas.truncate(count);
        replicas.sort_unstable();
        replicas
    }
}

/// A built world plus the handles needed to assert on it afterwards.
pub struct BuiltTopo {
    /// The wired world, not yet run.
    pub world: World,
    /// Simulator node id per graph node index.
    pub switch_ids: Vec<NodeId>,
    /// Simulator node id per graph host index.
    pub host_ids: Vec<NodeId>,
    /// Graph node indices of the adversarial replicas.
    pub adversarial: Vec<usize>,
}

/// Builds the world for `graph`. `host_factory(host_index, nic)`
/// supplies each host device; the nic already carries the full
/// IP→MAC neighbor table. `seed` feeds the world RNG (CPU jitter).
///
/// # Panics
///
/// Panics if `graph.routes` is empty while hosts exist.
pub fn build_world(
    graph: &TopoGraph,
    profile: &Profile,
    seed: u64,
    mut host_factory: impl FnMut(usize, HostNic) -> Box<dyn Device>,
    adversary: Option<&AdversarySpec>,
) -> BuiltTopo {
    assert!(
        graph.hosts.is_empty() || !graph.routes.is_empty(),
        "install routes before building"
    );
    let adversarial = adversary.map(|a| a.sites(graph)).unwrap_or_default();
    let every_nth = adversary.map(|a| a.every_nth.max(1)).unwrap_or(1);
    let mut world = World::new(seed);
    let neighbor_table: NeighborTable = graph.hosts.iter().map(|h| (h.ip, h.mac)).collect();

    // Switch-level nodes first, in graph order.
    let mut switch_ids = Vec::with_capacity(graph.nodes.len());
    for (n, node) in graph.nodes.iter().enumerate() {
        let device: Box<dyn Device> = match node.kind {
            NodeKind::Guard { k, detect } => {
                let replica_ports: Vec<PortId> = (1..=k as u16).map(PortId).collect();
                let compare = if detect {
                    CompareConfig::detect(k)
                } else {
                    CompareConfig::prevent(k)
                };
                Box::new(GuardSwitch::new(GuardConfig::inband(
                    PortId(0),
                    replica_ports,
                    compare,
                )))
            }
            NodeKind::Replica { .. } if adversarial.binary_search(&n).is_ok() => {
                let mut m = MaliciousSwitch::new();
                for (h, host) in graph.hosts.iter().enumerate() {
                    let port = graph.routes[n][h];
                    if port != NO_ROUTE {
                        m.route(host.mac, PortId(port));
                    }
                }
                m.add_behavior(
                    Behavior::CorruptPayload {
                        select: FlowMatch::any(),
                        every_nth,
                    },
                    ActivationWindow::always(),
                );
                Box::new(m)
            }
            NodeKind::Router | NodeKind::Replica { .. } => {
                let base = if node.kind == NodeKind::Router {
                    ROUTER_DPID_BASE
                } else {
                    REPLICA_DPID_BASE
                };
                let mut sw = OfSwitch::new(SwitchConfig::with_datapath_id(base | n as u64));
                for (h, host) in graph.hosts.iter().enumerate() {
                    let port = graph.routes[n][h];
                    if port != NO_ROUTE {
                        sw.preinstall(FlowEntry::new(
                            100,
                            FlowMatch::any().with_dl_dst(host.mac),
                            vec![Action::Output(OfPort::Physical(port))],
                        ));
                    }
                }
                Box::new(sw)
            }
        };
        let cpu = match node.kind {
            NodeKind::Guard { .. } => profile.guard_cpu.clone(),
            _ => profile.switch_cpu.clone(),
        };
        switch_ids.push(world.add_node(node.name.clone(), device, cpu));
    }

    for l in &graph.links {
        world.connect(
            switch_ids[l.a],
            PortId(l.a_port),
            switch_ids[l.b],
            PortId(l.b_port),
            LinkSpec::new(l.rate_bps, l.latency),
        );
    }

    let mut host_ids = Vec::with_capacity(graph.hosts.len());
    for (h, host) in graph.hosts.iter().enumerate() {
        let mut nic = HostNic::new(host.mac, host.ip);
        nic.neighbors = neighbor_table.clone();
        let device = host_factory(h, nic);
        let id = world.add_node(format!("host{h}"), device, profile.host_cpu.clone());
        world.connect(
            id,
            PortId(0),
            switch_ids[host.attach],
            PortId(host.attach_port),
            LinkSpec::new(host.rate_bps, host.latency),
        );
        host_ids.push(id);
    }

    BuiltTopo {
        world,
        switch_ids,
        host_ids,
        adversarial,
    }
}

#[cfg(test)]
mod tests {
    use netco_sim::SimDuration;
    use netco_traffic::{IcmpEchoResponder, PingConfig, Pinger};

    use super::*;
    use crate::generate::erdos_renyi;
    use crate::netcoize::{netcoize, NetcoizeSpec};

    fn ping_world(graph: &TopoGraph) -> (BuiltTopo, NodeId) {
        let dst_ip = graph.hosts[1].ip;
        let built = build_world(
            graph,
            &Profile::default(),
            7,
            |h, nic| {
                if h == 0 {
                    Box::new(Pinger::new(nic, PingConfig::new(dst_ip).with_count(5)))
                } else {
                    Box::new(IcmpEchoResponder::new(nic))
                }
            },
            None,
        );
        let pinger = built.host_ids[0];
        (built, pinger)
    }

    #[test]
    fn plain_generated_world_carries_pings() {
        let graph = erdos_renyi(12, 3.0, 4, 5);
        let (mut built, pinger) = ping_world(&graph);
        built.world.run_for(SimDuration::from_millis(200));
        let report = built.world.device::<Pinger>(pinger).unwrap().report();
        assert_eq!(report.transmitted, 5);
        assert_eq!(report.received, 5, "lossless fabric must deliver all");
    }

    #[test]
    fn netcoized_world_carries_pings_through_cells() {
        let base = erdos_renyi(8, 3.0, 4, 5);
        let graph = netcoize(&base, &NetcoizeSpec::full(3, 2));
        let (mut built, pinger) = ping_world(&graph);
        built.world.run_for(SimDuration::from_millis(400));
        let report = built.world.device::<Pinger>(pinger).unwrap().report();
        assert_eq!(report.received, 5, "cells must be transparent");
    }

    #[test]
    fn adversary_sites_are_deterministic_and_replicas_only() {
        let base = erdos_renyi(8, 3.0, 4, 5);
        let graph = netcoize(&base, &NetcoizeSpec::full(3, 2));
        let spec = AdversarySpec {
            fraction: 0.3,
            seed: 6,
            every_nth: 1,
        };
        let sites = spec.sites(&graph);
        assert_eq!(sites, spec.sites(&graph));
        assert!(!sites.is_empty());
        assert!(sites
            .iter()
            .all(|&n| matches!(graph.nodes[n].kind, NodeKind::Replica { .. })));
    }
}
