//! The combiner-everywhere campaign engine: size × class ×
//! adversarial-replica-fraction × k sweeps over NetCo-ized generated
//! topologies, reported as deterministic JSON.
//!
//! Every cell of the sweep generates its class's base graph, NetCo-izes
//! *every* router ([`NetcoizeSpec::full`]), corrupts a seeded fraction
//! of the replica switches ([`AdversarySpec`]) and drives hundreds of
//! routed ping tests through the built world. Cells fan out across the
//! [`Pool`] (each cell's world runs sequentially, so the report is
//! bit-identical at every `NETCO_THREADS`); one cell is additionally
//! re-run under the space-parallel executor at two region counts and
//! its tap digest compared, witnessing that region count does not move
//! the report either. No wall-clock value enters the JSON.

use std::cell::RefCell;
use std::rc::Rc;

use netco_harness::Pool;
use netco_net::{TapDirection, World};
use netco_sim::{SimDuration, SimTime};
use netco_topo::Profile;
use netco_traffic::{
    FlowSet, FlowSetConfig, FlowSink, IcmpEchoResponder, PingConfig, Pinger, SizeDist,
};

use crate::build::{build_world, AdversarySpec, BuiltTopo};
use crate::generate;
use crate::graph::TopoGraph;
use crate::netcoize::{netcoize, NetcoizeSpec};

/// One topology class of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClassSpec {
    /// 2D grid, `rows × cols` routers.
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// Erdős–Rényi `G(n, p)` at the given expected degree.
    ErdosRenyi {
        /// Router count.
        n: usize,
        /// Expected degree (sets `p`).
        avg_degree: f64,
    },
    /// Barabási-Albert preferential attachment.
    BarabasiAlbert {
        /// Router count.
        n: usize,
        /// Links per new router.
        m: usize,
    },
    /// Watts-Strogatz small world.
    WattsStrogatz {
        /// Router count.
        n: usize,
        /// Ring neighbors (even).
        k_neighbors: usize,
        /// Rewiring probability.
        beta: f64,
    },
    /// The `netco_topo::fattree` Clos fabric (host count fixed by the
    /// arity; the `hosts` knob is ignored).
    FatTree {
        /// Fat-tree arity (even).
        k: usize,
    },
}

impl ClassSpec {
    /// Stable class label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            ClassSpec::Grid { .. } => "grid",
            ClassSpec::ErdosRenyi { .. } => "erdos_renyi",
            ClassSpec::BarabasiAlbert { .. } => "barabasi_albert",
            ClassSpec::WattsStrogatz { .. } => "watts_strogatz",
            ClassSpec::FatTree { .. } => "fat_tree",
        }
    }

    /// Generates the class's base graph with `hosts` hosts.
    pub fn graph(&self, hosts: usize, seed: u64) -> TopoGraph {
        match *self {
            ClassSpec::Grid { rows, cols } => generate::grid2d(rows, cols, false, hosts, seed),
            ClassSpec::ErdosRenyi { n, avg_degree } => {
                generate::erdos_renyi(n, avg_degree, hosts, seed)
            }
            ClassSpec::BarabasiAlbert { n, m } => generate::barabasi_albert(n, m, hosts, seed),
            ClassSpec::WattsStrogatz {
                n,
                k_neighbors,
                beta,
            } => generate::watts_strogatz(n, k_neighbors, beta, hosts, seed),
            ClassSpec::FatTree { k } => generate::fat_tree(k, seed),
        }
    }
}

/// The full sweep description.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Report label (`"full"` / `"smoke"`).
    pub label: String,
    /// Topology classes.
    pub classes: Vec<ClassSpec>,
    /// Replica counts per cell (2 = Detect, ≥3 = Prevent).
    pub ks: Vec<usize>,
    /// Fractions of replica switches made adversarial.
    pub adversary_fractions: Vec<f64>,
    /// Ping pairs per cell (capped at half the host count).
    pub pairs: usize,
    /// Echo requests per pair.
    pub pings_per_pair: u32,
    /// Hosts attached to generated classes (fat-tree fixes its own).
    pub hosts: usize,
    /// Simulated run length per cell, in milliseconds.
    pub run_ms: u64,
    /// Master seed.
    pub seed: u64,
    /// Additionally run one offered-load cell (the first sweep cell's
    /// topology driven by [`FlowSet`] sources into [`FlowSink`]s instead
    /// of pings). Smoke-scale campaigns only — the full sweep keeps its
    /// recorded shape.
    pub offered_load: bool,
}

impl CampaignConfig {
    /// The headline campaign: 5 classes × k ∈ {2, 3, 5} × 3 adversary
    /// fractions, 240 routed ping tests per cell. The grid class at
    /// k = 2 is a 400-switch NetCo-ized world (272 guards + 128
    /// replicas); larger k go well past that.
    pub fn full(seed: u64) -> CampaignConfig {
        CampaignConfig {
            label: "full".into(),
            classes: vec![
                ClassSpec::Grid { rows: 8, cols: 8 },
                ClassSpec::ErdosRenyi {
                    n: 64,
                    avg_degree: 4.0,
                },
                ClassSpec::BarabasiAlbert { n: 64, m: 2 },
                ClassSpec::WattsStrogatz {
                    n: 64,
                    k_neighbors: 4,
                    beta: 0.1,
                },
                ClassSpec::FatTree { k: 6 },
            ],
            ks: vec![2, 3, 5],
            adversary_fractions: vec![0.0, 0.2, 0.5],
            pairs: 24,
            pings_per_pair: 10,
            hosts: 48,
            run_ms: 300,
            seed,
            offered_load: false,
        }
    }

    /// The CI smoke campaign: ≤ 100 switches per cell, 2 classes,
    /// k ∈ {2, 3}, 104 tests per cell — small enough for a timeout'd
    /// rerun-twice bit-identity check.
    pub fn smoke(seed: u64) -> CampaignConfig {
        CampaignConfig {
            label: "smoke".into(),
            classes: vec![
                ClassSpec::Grid { rows: 3, cols: 3 },
                ClassSpec::BarabasiAlbert { n: 10, m: 2 },
            ],
            ks: vec![2, 3],
            adversary_fractions: vec![0.0, 0.4],
            pairs: 13,
            pings_per_pair: 8,
            hosts: 26,
            run_ms: 200,
            seed,
            offered_load: true,
        }
    }
}

/// What one sweep cell measured.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Class label.
    pub class: String,
    /// Replicas per NetCo cell.
    pub k: usize,
    /// Adversarial replica fraction.
    pub adversary_fraction: f64,
    /// Switch count of the NetCo-ized world (guards + replicas).
    pub switches: usize,
    /// Guard count.
    pub guards: usize,
    /// Replica count.
    pub replicas: usize,
    /// How many replicas actually misbehave.
    pub adversarial: usize,
    /// Echo requests sent (the cell's test count).
    pub tests: u32,
    /// Echo replies received.
    pub received: u32,
    /// `received / tests`, percent.
    pub availability_pct: f64,
    /// Mean hop stretch vs. the un-NetCo-ized base graph, from the
    /// index form.
    pub mean_stretch: f64,
    /// Delivered echo payload rate over the simulated run, bits/s.
    pub goodput_bps: f64,
    /// Reply-weighted mean RTT, nanoseconds (0 when nothing arrived).
    pub avg_rtt_ns: u64,
    /// Simulator events processed.
    pub events: u64,
    /// Order-sensitive tap digest of the cell's frame stream.
    pub digest: u64,
}

/// The offered-load cell: the first sweep cell's topology driven by
/// [`FlowSet`] engines instead of pings, reporting how much of the
/// offered traffic the NetCo-ized fabric actually delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct OfferedLoadOutcome {
    /// Class label of the underlying topology.
    pub class: String,
    /// Replicas per NetCo cell.
    pub k: usize,
    /// Flow sources (one per ping pair's even host).
    pub sources: usize,
    /// Flows spawned across all sources.
    pub flows_spawned: u64,
    /// Flows that sent their last byte before the deadline.
    pub flows_completed: u64,
    /// Packets accepted by the sinks.
    pub packets_delivered: u64,
    /// Payload bits/s the sources offered over the run.
    pub offered_bps: f64,
    /// Payload bits/s the sinks accepted over the run.
    pub goodput_bps: f64,
    /// Combined order-sensitive sink digest — rerun bit-identity witness.
    pub digest: u64,
}

/// A finished campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// One outcome per sweep cell, in sweep order (class-major, then
    /// k, then fraction).
    pub cells: Vec<CellOutcome>,
    /// Whether the first cell's tap digest was identical under the
    /// space-parallel executor at 2 and 4 regions.
    pub region_parallel_identical: bool,
    /// Minimum availability over the adversary-free cells (the paper's
    /// baseline claim: the combiner is transparent — 100.0 expected).
    pub zero_fraction_availability_pct: f64,
    /// The offered-load cell, when [`CampaignConfig::offered_load`] was
    /// set (smoke campaigns).
    pub offered_load: Option<OfferedLoadOutcome>,
}

fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Folds every tap observation into one order-sensitive digest (the
/// `region_determinism` witness, reused as the campaign's bit-identity
/// evidence).
fn install_digest_tap(world: &mut World) -> Rc<RefCell<u64>> {
    let acc = Rc::new(RefCell::new(0u64));
    let tap_acc = Rc::clone(&acc);
    world.add_tap(move |ev| {
        let mut d = *tap_acc.borrow();
        d = splitmix(d ^ ev.at.as_nanos());
        d = splitmix(d ^ ev.node.index() as u64);
        d = splitmix(d ^ ev.port.0 as u64);
        d = splitmix(d ^ matches!(ev.direction, TapDirection::Tx) as u64);
        d = splitmix(d ^ netco_net::fnv1a(ev.frame));
        *tap_acc.borrow_mut() = d;
    });
    acc
}

/// One sweep coordinate.
#[derive(Debug, Clone, Copy)]
struct Cell {
    class_idx: usize,
    k: usize,
    frac_idx: usize,
}

/// The two graphs a cell runs on: the base class graph (stretch
/// denominator) and its fully NetCo-ized form.
fn cell_graphs(cfg: &CampaignConfig, cell: Cell) -> (TopoGraph, TopoGraph) {
    let class = &cfg.classes[cell.class_idx];
    // Base graph depends on class only, so stretch and availability are
    // comparable across k and fraction within a class.
    let base = class.graph(cfg.hosts, cfg.seed.wrapping_add(cell.class_idx as u64));
    let netco = netcoize(&base, &NetcoizeSpec::full(cell.k, cfg.seed));
    (base, netco)
}

fn cell_adversary(cfg: &CampaignConfig, cell: Cell) -> AdversarySpec {
    AdversarySpec {
        fraction: cfg.adversary_fractions[cell.frac_idx],
        seed: splitmix(cfg.seed ^ ((cell.k as u64) << 32) ^ cell.frac_idx as u64),
        every_nth: 1,
    }
}

/// Builds a cell's world: ping pairs `(2p, 2p+1)` with per-pair
/// identifiers and staggered starts, echo responders everywhere else.
fn cell_world(cfg: &CampaignConfig, cell: Cell, netco: &TopoGraph) -> (BuiltTopo, usize) {
    let pairs = cfg.pairs.min(netco.hosts.len() / 2);
    let adversary = cell_adversary(cfg, cell);
    let world_seed = splitmix(
        cfg.seed ^ ((cell.class_idx as u64) << 48) ^ ((cell.k as u64) << 24) ^ cell.frac_idx as u64,
    );
    let built = build_world(
        netco,
        &Profile::default(),
        world_seed,
        |h, nic| {
            let pair = h / 2;
            if h % 2 == 0 && pair < pairs {
                let cfg = PingConfig {
                    dst_ip: netco.hosts[h + 1].ip,
                    count: cfg.pings_per_pair,
                    interval: SimDuration::from_millis(10),
                    payload_len: 56,
                    identifier: pair as u16 + 1,
                    start_after: SimDuration::from_micros((pair as u64 % 16) * 500),
                };
                Box::new(Pinger::new(nic, cfg))
            } else {
                Box::new(IcmpEchoResponder::new(nic))
            }
        },
        Some(&adversary),
    );
    (built, pairs)
}

fn run_cell(cfg: &CampaignConfig, cell: Cell) -> CellOutcome {
    let (base, netco) = cell_graphs(cfg, cell);
    let (mut built, pairs) = cell_world(cfg, cell, &netco);
    let digest = install_digest_tap(&mut built.world);
    built
        .world
        .run_until(SimTime::from_nanos(cfg.run_ms * 1_000_000));

    let mut tests = 0u32;
    let mut received = 0u32;
    let mut rtt_weighted_ns = 0u128;
    let mut stretch_sum = 0.0;
    let mut stretch_n = 0usize;
    for pair in 0..pairs {
        let report = built
            .world
            .device::<Pinger>(built.host_ids[2 * pair])
            .expect("pinger device")
            .report();
        tests += report.transmitted;
        received += report.received;
        if let Some(avg) = report.avg {
            rtt_weighted_ns += avg.as_nanos() as u128 * report.received as u128;
        }
        if let (Some(nh), Some(bh)) = (
            netco.route_hops(2 * pair, 2 * pair + 1),
            base.route_hops(2 * pair, 2 * pair + 1),
        ) {
            if bh > 0 {
                stretch_sum += nh as f64 / bh as f64;
                stretch_n += 1;
            }
        }
    }
    let (_, guards, replicas) = netco.kind_counts();
    CellOutcome {
        class: cfg.classes[cell.class_idx].label().into(),
        k: cell.k,
        adversary_fraction: cfg.adversary_fractions[cell.frac_idx],
        switches: netco.switch_count(),
        guards,
        replicas,
        adversarial: built.adversarial.len(),
        tests,
        received,
        availability_pct: if tests == 0 {
            0.0
        } else {
            received as f64 / tests as f64 * 100.0
        },
        mean_stretch: if stretch_n == 0 {
            0.0
        } else {
            stretch_sum / stretch_n as f64
        },
        goodput_bps: received as f64 * 56.0 * 8.0 * 1000.0 / cfg.run_ms as f64,
        avg_rtt_ns: if received == 0 {
            0
        } else {
            (rtt_weighted_ns / received as u128) as u64
        },
        events: built.world.events_processed(),
        digest: {
            let d = *digest.borrow();
            d
        },
    }
}

/// Runs the offered-load cell: the first sweep cell's adversary-free
/// topology, with the even host of each pair running a [`FlowSet`]
/// (fixed-size two-packet flows toward its partner) and every other
/// host a [`FlowSink`].
fn run_offered_load(cfg: &CampaignConfig, cell: Cell) -> OfferedLoadOutcome {
    let (_, netco) = cell_graphs(cfg, cell);
    let pairs = cfg.pairs.min(netco.hosts.len() / 2);
    let world_seed = splitmix(cfg.seed ^ 0x6f66_6665_7265_6421); // "offered!"
    let mut built = build_world(
        &netco,
        &Profile::default(),
        world_seed,
        |h, nic| {
            let pair = h / 2;
            if h % 2 == 0 && pair < pairs {
                let flow_cfg = FlowSetConfig::new(netco.hosts[h + 1].ip)
                    .with_initial_flows(40)
                    .with_arrival_rate(0.0)
                    .with_size_dist(SizeDist::Fixed(2_400))
                    .with_payload_len(1_200)
                    .with_flow_rate(10_000_000)
                    .with_start_spread(SimDuration::from_millis(cfg.run_ms / 2))
                    // Content-unique payloads: the compare's §V packet cache
                    // suppresses byte-identical packets as replicated-copy
                    // duplicates, so untagged (all-zero) flows would collapse
                    // to ~one release per source.
                    .with_tagged_payload(true);
                Box::new(FlowSet::new(nic, flow_cfg))
            } else {
                Box::new(FlowSink::new(nic))
            }
        },
        None,
    );
    built
        .world
        .run_until(SimTime::from_nanos(cfg.run_ms * 1_000_000));

    let mut spawned = 0u64;
    let mut completed = 0u64;
    let mut offered_bytes = 0u64;
    let mut packets = 0u64;
    let mut goodput_bytes = 0u64;
    let mut digest = 0u64;
    for (h, &id) in built.host_ids.iter().enumerate() {
        if h % 2 == 0 && h / 2 < pairs {
            let stats = built
                .world
                .device::<FlowSet>(id)
                .expect("flow source")
                .stats();
            spawned += stats.spawned;
            completed += stats.completed;
            offered_bytes += stats.bytes_sent;
        } else if let Some(sink) = built.world.device::<FlowSink>(id) {
            packets += sink.packets();
            goodput_bytes += sink.bytes();
            digest = splitmix(digest ^ sink.digest());
        }
    }
    let run_s = cfg.run_ms as f64 / 1_000.0;
    OfferedLoadOutcome {
        class: cfg.classes[cell.class_idx].label().into(),
        k: cell.k,
        sources: pairs,
        flows_spawned: spawned,
        flows_completed: completed,
        packets_delivered: packets,
        offered_bps: offered_bytes as f64 * 8.0 / run_s,
        goodput_bps: goodput_bytes as f64 * 8.0 / run_s,
        digest,
    }
}

/// Re-runs the first sweep cell under the space-parallel executor at
/// the given region count and returns its tap digest.
fn region_digest(cfg: &CampaignConfig, cell: Cell, pool: &Pool, regions: usize) -> u64 {
    let (_, netco) = cell_graphs(cfg, cell);
    let (mut built, _) = cell_world(cfg, cell, &netco);
    let digest = install_digest_tap(&mut built.world);
    built
        .world
        .run_until_parallel(SimTime::from_nanos(cfg.run_ms * 1_000_000), pool, regions);
    let d = *digest.borrow();
    d
}

/// Runs the whole sweep, fanning cells across `pool`.
pub fn run_campaign(cfg: &CampaignConfig, pool: &Pool) -> CampaignResult {
    let mut sweep = Vec::new();
    for class_idx in 0..cfg.classes.len() {
        for &k in &cfg.ks {
            for frac_idx in 0..cfg.adversary_fractions.len() {
                sweep.push(Cell {
                    class_idx,
                    k,
                    frac_idx,
                });
            }
        }
    }
    let cells = pool.map(&sweep, |&cell| run_cell(cfg, cell));
    // Region-count independence witness: the first cell, re-run under
    // the space-parallel executor, must reproduce its sequential digest.
    let first = sweep[0];
    let sequential = cells[0].digest;
    let region_parallel_identical = [2, 4]
        .into_iter()
        .all(|regions| region_digest(cfg, first, pool, regions) == sequential);
    let zero_fraction_availability_pct = cells
        .iter()
        .filter(|c| c.adversary_fraction == 0.0)
        .map(|c| c.availability_pct)
        .fold(f64::INFINITY, f64::min);
    let offered_load = cfg.offered_load.then(|| run_offered_load(cfg, first));
    CampaignResult {
        cells,
        region_parallel_identical,
        zero_fraction_availability_pct,
        offered_load,
    }
}

/// Renders the campaign as deterministic JSON (stable key order, fixed
/// decimal places, no wall-clock values).
pub fn render_json(cfg: &CampaignConfig, result: &CampaignResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"label\": \"{}\",\n", cfg.label));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!(
        "  \"classes\": [{}],\n",
        cfg.classes
            .iter()
            .map(|c| format!("\"{}\"", c.label()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "  \"ks\": [{}],\n",
        cfg.ks
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "  \"adversary_fractions\": [{}],\n",
        cfg.adversary_fractions
            .iter()
            .map(|f| format!("{f:.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("  \"pairs\": {},\n", cfg.pairs));
    out.push_str(&format!("  \"pings_per_pair\": {},\n", cfg.pings_per_pair));
    out.push_str(&format!("  \"run_ms\": {},\n", cfg.run_ms));
    out.push_str(&format!(
        "  \"region_parallel_identical\": {},\n",
        result.region_parallel_identical
    ));
    out.push_str(&format!(
        "  \"zero_fraction_availability_pct\": {:.2},\n",
        result.zero_fraction_availability_pct
    ));
    // Appended (never interleaved) so campaigns without the offered-load
    // cell render byte-for-byte what they always did.
    if let Some(o) = &result.offered_load {
        out.push_str(&format!(
            "  \"offered_load\": {{\"class\": \"{}\", \"k\": {}, \"sources\": {}, \
             \"flows_spawned\": {}, \"flows_completed\": {}, \"packets_delivered\": {}, \
             \"offered_bps\": {:.1}, \"goodput_bps\": {:.1}, \"digest\": \"{:#018x}\"}},\n",
            o.class,
            o.k,
            o.sources,
            o.flows_spawned,
            o.flows_completed,
            o.packets_delivered,
            o.offered_bps,
            o.goodput_bps,
            o.digest
        ));
    }
    out.push_str("  \"cells\": [\n");
    for (i, c) in result.cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"class\": \"{}\", \"k\": {}, \"adversary_fraction\": {:.2}, \
             \"switches\": {}, \"guards\": {}, \"replicas\": {}, \"adversarial\": {}, \
             \"tests\": {}, \"received\": {}, \"availability_pct\": {:.2}, \
             \"mean_stretch\": {:.3}, \"goodput_bps\": {:.1}, \"avg_rtt_ns\": {}, \
             \"events\": {}, \"digest\": \"{:#018x}\"}}{}\n",
            c.class,
            c.k,
            c.adversary_fraction,
            c.switches,
            c.guards,
            c.replicas,
            c.adversarial,
            c.tests,
            c.received,
            c.availability_pct,
            c.mean_stretch,
            c.goodput_bps,
            c.avg_rtt_ns,
            c.events,
            c.digest,
            if i + 1 == result.cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_is_deterministic_and_available() {
        let cfg = CampaignConfig::smoke(7);
        let pool = Pool::new(2);
        let a = run_campaign(&cfg, &pool);
        let b = run_campaign(&cfg, &Pool::new(1));
        assert_eq!(a, b, "thread count must not move the campaign");
        assert_eq!(render_json(&cfg, &a), render_json(&cfg, &b));
        assert!(a.region_parallel_identical);
        assert_eq!(a.cells.len(), 2 * 2 * 2);
        assert_eq!(a.zero_fraction_availability_pct, 100.0);
        for c in &a.cells {
            assert!(c.switches <= 100, "smoke cells stay small");
            assert_eq!(c.tests, 13 * 8);
            assert!(c.mean_stretch >= 1.0);
            if c.adversary_fraction == 0.0 {
                assert_eq!(c.received, c.tests, "combiner must be transparent");
                assert!(c.avg_rtt_ns > 0);
                assert!(c.goodput_bps > 0.0);
            }
        }
        let offered = a.offered_load.as_ref().expect("smoke runs offered load");
        assert!(offered.sources > 0);
        assert!(offered.flows_spawned > 0, "no flows offered");
        assert_eq!(
            offered.flows_completed, offered.flows_spawned,
            "every offered flow drains within the run"
        );
        // Fixed(2,400)-byte flows at 1,200 B/packet: two packets per flow,
        // and the zero-adversary NetCo fabric must deliver all of them —
        // tagged payloads keep the compare's content-keyed cache from
        // collapsing the stream into duplicates.
        assert_eq!(
            offered.packets_delivered,
            offered.flows_spawned * 2,
            "lossless fabric delivers every offered packet"
        );
        assert!(offered.goodput_bps > 0.0);
        assert!(
            offered.goodput_bps <= offered.offered_bps,
            "goodput cannot exceed offered load"
        );
        assert_eq!(
            a.offered_load, b.offered_load,
            "offered-load cell must be deterministic"
        );
    }

    #[test]
    fn full_campaign_json_has_no_offered_load_cell() {
        let cfg = CampaignConfig::full(7);
        assert!(!cfg.offered_load, "the full sweep keeps its recorded shape");
    }
}
