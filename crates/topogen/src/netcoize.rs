//! The pure NetCo-ization transform: replace untrusted routers with the
//! paper's robust combiner, entirely in the index form.
//!
//! A replaced router of degree `d` (links *and* hosts both count)
//! becomes one cell of `d` trusted guards — one per former attachment,
//! port 0 facing whatever that attachment faced — plus `k` untrusted
//! replica switches, each wired to every guard (replica `i` port
//! `j + 1` ↔ guard `j` port `i`, the `netco_bench::grid` cell geometry
//! generalized from degree 2 to degree `d`). The replicas inherit the
//! router's route table (egress ports remapped through attachment
//! rank), guards carry no routes (their forwarding is hub-and-vote, not
//! table lookup), and untouched nodes, links, hosts and routes are
//! preserved index-for-index. Because the transform is pure, path
//! stretch and switch inflation can be measured on the output graph
//! before a single simulator event fires.

use netco_sim::{SimDuration, SimRng};

use crate::graph::{Attachment, NodeKind, TopoGraph, NO_ROUTE};

/// Rate of the intra-cell guard↔replica links (1 Gbit/s, matching the
/// fabric links the generators emit).
pub const CELL_LINK_RATE_BPS: u64 = 1_000_000_000;

/// One-way latency of the intra-cell guard↔replica links. Short but
/// positive: the cell's internal edges stay visible to the region
/// partitioner's lookahead matrix.
pub const CELL_LINK_LATENCY_US: u64 = 2;

/// What fraction of routers to NetCo-ize, and how.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetcoizeSpec {
    /// Fraction of `Router` nodes to replace, in `[0, 1]`. The count is
    /// rounded to nearest; `1.0` replaces every router.
    pub fraction: f64,
    /// Replicas per cell. `k >= 3` yields Prevent semantics (majority
    /// vote), `k == 2` yields Detect (mismatch alarms, first copy
    /// released).
    pub k: usize,
    /// Seed for the replacement-site selection shuffle.
    pub seed: u64,
}

impl NetcoizeSpec {
    /// Replace every router with a `k`-replica cell.
    pub fn full(k: usize, seed: u64) -> NetcoizeSpec {
        NetcoizeSpec {
            fraction: 1.0,
            k,
            seed,
        }
    }

    /// Whether cells built from this spec run Detect (k < 3) rather
    /// than Prevent semantics.
    pub fn detect(&self) -> bool {
        self.k < 3
    }
}

/// The deterministic set of router indices `netcoize` will replace for
/// this spec: a seeded shuffle of the router indices, truncated to the
/// rounded fraction, returned sorted. Exposed so campaigns can place
/// adversarial replicas at known sites.
pub fn replacement_sites(base: &TopoGraph, spec: &NetcoizeSpec) -> Vec<usize> {
    let mut routers: Vec<usize> = (0..base.nodes.len())
        .filter(|&n| base.nodes[n].kind == NodeKind::Router)
        .collect();
    let count = (spec.fraction.clamp(0.0, 1.0) * routers.len() as f64).round() as usize;
    let mut rng = SimRng::new(spec.seed).fork(0x6e63); // "nc"
    rng.shuffle(&mut routers);
    routers.truncate(count);
    routers.sort_unstable();
    routers
}

/// Replaces the selected fraction of `base`'s routers with guard +
/// `k`-replica cells (see the module docs) and returns the transformed
/// graph. `base.routes` must be installed. With a selection of zero
/// routers (fraction `0.0`, or a fraction that rounds to zero sites)
/// the transform is the identity.
///
/// # Panics
///
/// Panics if `spec.k < 2` or `base.routes` is empty while hosts exist.
pub fn netcoize(base: &TopoGraph, spec: &NetcoizeSpec) -> TopoGraph {
    assert!(spec.k >= 2, "a combiner needs at least two replicas");
    assert!(
        base.hosts.is_empty() || !base.routes.is_empty(),
        "install routes before netcoizing"
    );
    let sites = replacement_sites(base, spec);
    if sites.is_empty() {
        return base.clone();
    }
    let replaced = {
        let mut flags = vec![false; base.nodes.len()];
        for &s in &sites {
            flags[s] = true;
        }
        flags
    };

    let mut out = TopoGraph::new(base.class.clone());
    // Surviving nodes first (same relative order), then each cell's
    // guards and replicas in base-index order.
    let mut survivor: Vec<Option<usize>> = vec![None; base.nodes.len()];
    for (n, node) in base.nodes.iter().enumerate() {
        if !replaced[n] {
            survivor[n] = Some(out.add_node(node.name.clone(), node.kind));
        }
    }
    // Per replaced node: its attachments in port-rank order, the new
    // guard node per rank, and the new replica nodes.
    struct Cell {
        base_node: usize,
        /// `(base port, attachment)` sorted by port; rank = index.
        atts: Vec<(u16, Attachment)>,
        guards: Vec<usize>,
        replicas: Vec<usize>,
    }
    let detect = spec.detect();
    let mut cells: Vec<Cell> = Vec::with_capacity(sites.len());
    for &n in &sites {
        let atts = base.attachments(n);
        assert!(!atts.is_empty(), "cannot netcoize an isolated router");
        let name = &base.nodes[n].name;
        let guards: Vec<usize> = (0..atts.len())
            .map(|j| {
                out.add_node(
                    format!("{name}#g{j}"),
                    NodeKind::Guard { k: spec.k, detect },
                )
            })
            .collect();
        let replicas: Vec<usize> = (1..=spec.k)
            .map(|i| out.add_node(format!("{name}#r{i}"), NodeKind::Replica { index: i }))
            .collect();
        cells.push(Cell {
            base_node: n,
            atts,
            guards,
            replicas,
        });
    }
    let cell_of = |node: usize| cells.iter().find(|c| c.base_node == node);
    // An endpoint `(node, port)` of a base link/host maps to the node's
    // survivor (same port) or to the guard fronting that attachment
    // rank (port 0).
    let map_end = |node: usize, port: u16| -> (usize, u16) {
        match survivor[node] {
            Some(s) => (s, port),
            None => {
                let cell = cell_of(node).expect("replaced node has a cell");
                let rank = cell
                    .atts
                    .iter()
                    .position(|&(p, _)| p == port)
                    .expect("port is an attachment");
                (cell.guards[rank], 0)
            }
        }
    };
    for l in &base.links {
        let (a, a_port) = map_end(l.a, l.a_port);
        let (b, b_port) = map_end(l.b, l.b_port);
        out.link_with_ports(a, a_port, b, b_port, l.rate_bps, l.latency);
    }
    let cell_latency = SimDuration::from_micros(CELL_LINK_LATENCY_US);
    for cell in &cells {
        // Replica i port j+1 ↔ guard j port i — the grid cell geometry.
        for (ri, &replica) in cell.replicas.iter().enumerate() {
            let i = (ri + 1) as u16;
            for (j, &guard) in cell.guards.iter().enumerate() {
                out.link_with_ports(
                    guard,
                    i,
                    replica,
                    j as u16 + 1,
                    CELL_LINK_RATE_BPS,
                    cell_latency,
                );
            }
        }
    }
    for h in &base.hosts {
        let (node, port) = map_end(h.attach, h.attach_port);
        out.attach_host_at(node, port, h.mac, h.ip, h.rate_bps, h.latency);
    }

    // Routes: survivors keep their rows verbatim (their egress ports
    // did not move); replicas remap each egress port to attachment rank
    // + 1 (their port toward the guard fronting that attachment);
    // guards carry no table.
    out.routes = vec![vec![NO_ROUTE; out.hosts.len()]; out.nodes.len()];
    for (n, row) in base.routes.iter().enumerate() {
        if let Some(s) = survivor[n] {
            out.routes[s].clone_from(row);
        }
    }
    for cell in &cells {
        let base_row = &base.routes[cell.base_node];
        for (h, &port) in base_row.iter().enumerate() {
            if port == NO_ROUTE {
                continue;
            }
            let rank = cell
                .atts
                .iter()
                .position(|&(p, _)| p == port)
                .expect("route egress is an attachment") as u16;
            for &replica in &cell.replicas {
                out.routes[replica][h] = rank + 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use std::net::Ipv4Addr;

    use netco_net::MacAddr;

    use super::*;

    fn path3() -> TopoGraph {
        let mut g = TopoGraph::new("path");
        let a = g.add_node("a", NodeKind::Router);
        let b = g.add_node("b", NodeKind::Router);
        let c = g.add_node("c", NodeKind::Router);
        let us = SimDuration::from_micros(5);
        g.link(a, b, 1_000_000_000, us);
        g.link(b, c, 1_000_000_000, us);
        g.attach_host(
            a,
            MacAddr::local(1),
            Ipv4Addr::new(10, 0, 0, 1),
            1_000_000_000,
            us,
        );
        g.attach_host(
            c,
            MacAddr::local(2),
            Ipv4Addr::new(10, 0, 0, 2),
            1_000_000_000,
            us,
        );
        g.install_shortest_path_routes();
        g
    }

    #[test]
    fn fraction_zero_is_identity() {
        let base = path3();
        let out = netcoize(
            &base,
            &NetcoizeSpec {
                fraction: 0.0,
                k: 3,
                seed: 9,
            },
        );
        assert_eq!(out, base);
        assert_eq!(out.digest(), base.digest());
    }

    #[test]
    fn full_netcoize_builds_cells_and_preserves_paths() {
        let base = path3();
        let out = netcoize(&base, &NetcoizeSpec::full(3, 9));
        // Every degree-2 router becomes 2 guards + 3 replicas.
        assert_eq!(out.kind_counts(), (0, 6, 9));
        assert_eq!(out.switch_count(), 15);
        // Base: host0 -> host1 crosses a, b, c = 3 hops. NetCo-ized:
        // each router is guard+replica+guard = 3 hops -> 9.
        assert_eq!(base.route_hops(0, 1), Some(3));
        assert_eq!(out.route_hops(0, 1), Some(9));
        assert_eq!(out.route_hops(1, 0), Some(9));
        // Host indices and addresses are preserved.
        assert_eq!(out.hosts[0].mac, base.hosts[0].mac);
        assert_eq!(out.hosts[1].ip, base.hosts[1].ip);
        assert!(out.is_connected());
    }

    #[test]
    fn partial_netcoize_keeps_survivor_routes() {
        let base = path3();
        let spec = NetcoizeSpec {
            fraction: 0.34, // rounds to 1 of 3 routers
            k: 2,
            seed: 4,
        };
        let sites = replacement_sites(&base, &spec);
        assert_eq!(sites.len(), 1);
        let out = netcoize(&base, &spec);
        let (routers, guards, replicas) = out.kind_counts();
        assert_eq!(routers, 2);
        assert_eq!(replicas, 2);
        assert!(guards >= 2);
        // Paths still resolve end to end; exactly one cell adds 2 hops.
        assert_eq!(out.route_hops(0, 1), Some(5));
        // Detect semantics at k = 2.
        assert!(out
            .nodes
            .iter()
            .all(|n| !matches!(n.kind, NodeKind::Guard { detect: false, .. })));
    }

    #[test]
    fn site_selection_is_seeded_and_sorted() {
        let base = path3();
        let spec = NetcoizeSpec {
            fraction: 0.67,
            k: 3,
            seed: 11,
        };
        let a = replacement_sites(&base, &spec);
        let b = replacement_sites(&base, &spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(
            netcoize(&base, &spec).digest(),
            netcoize(&base, &spec).digest()
        );
    }
}
