//! Deterministic, seed-keyed graph generators.
//!
//! Every generator is a pure function of its parameters and the seed:
//! same inputs → byte-identical [`TopoGraph`] (the proptests fold
//! [`TopoGraph::digest`] to enforce it). All randomness flows through
//! labeled [`SimRng`] forks, so adding a generator never perturbs an
//! existing one.

use std::net::Ipv4Addr;

use netco_net::MacAddr;
use netco_sim::{SimDuration, SimRng};
use netco_topo::FatTreeIndex;

use crate::graph::{NodeKind, TopoGraph};
use crate::lattice::stagger_latency;

/// Default link rate for generated topologies (1 Gbit/s, the paper's
/// testbed speed).
pub const LINK_RATE_BPS: u64 = 1_000_000_000;

/// RNG fork labels (stable: part of the deterministic contract).
const FORK_LINKS: u64 = 0x11;
const FORK_HOSTS: u64 = 0x22;
const FORK_WIRE: u64 = 0x33;

/// Deterministic host MAC for generated topologies (distinct from the
/// fat-tree's `local(1000 + h)` scheme and the row lattice's `0x1000`
/// block).
pub fn host_mac(host: usize) -> MacAddr {
    MacAddr::local(0x2_0000 + host as u32)
}

/// Deterministic host IPv4 for generated topologies.
pub fn host_ip(host: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 100 + (host / 250) as u8, (host % 250) as u8, 2)
}

/// Per-link staggered latency: 3–9 µs, drawn in link-creation order.
fn next_latency(rng: &mut SimRng) -> SimDuration {
    SimDuration::from_micros(rng.range(3, 10))
}

/// Attaches `hosts` hosts to routers of `g` in a seed-shuffled
/// round-robin (host `h` lands on the `h mod n`-th router of a shuffled
/// router permutation), then installs shortest-path routes.
fn attach_hosts_and_route(g: &mut TopoGraph, hosts: usize, rng: &mut SimRng) {
    let n = g.nodes.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut hrng = rng.fork(FORK_HOSTS);
    hrng.shuffle(&mut order);
    for h in 0..hosts {
        let node = order[h % n];
        let latency = next_latency(&mut hrng);
        g.attach_host(node, host_mac(h), host_ip(h), LINK_RATE_BPS, latency);
    }
    g.install_shortest_path_routes();
}

/// Chains disconnected components together (one deterministic link
/// between the smallest members of consecutive components), so sparse
/// random draws still yield a usable fabric. Returns how many links were
/// added — `0` means the draw was already connected.
fn ensure_connected(g: &mut TopoGraph, rng: &mut SimRng) -> usize {
    let comps = g.components();
    let added = comps.len().saturating_sub(1);
    for pair in comps.windows(2) {
        let latency = next_latency(rng);
        g.link(pair[0][0], pair[1][0], LINK_RATE_BPS, latency);
    }
    added
}

/// Erdős–Rényi `G(n, p)` with `p = avg_degree / (n-1)`, chained
/// connected, `hosts` hosts, shortest-path routes installed.
pub fn erdos_renyi(n: usize, avg_degree: f64, hosts: usize, seed: u64) -> TopoGraph {
    assert!(n >= 2, "need at least two routers");
    let mut g = TopoGraph::new("erdos_renyi");
    for i in 0..n {
        g.add_node(format!("er{i}"), NodeKind::Router);
    }
    let mut rng = SimRng::new(seed).fork(FORK_LINKS);
    let p = (avg_degree / (n as f64 - 1.0)).clamp(0.0, 1.0);
    let mut wire = rng.fork(FORK_WIRE);
    for i in 0..n {
        for j in (i + 1)..n {
            if wire.chance(p) {
                let latency = next_latency(&mut wire);
                g.link(i, j, LINK_RATE_BPS, latency);
            }
        }
    }
    ensure_connected(&mut g, &mut wire);
    attach_hosts_and_route(&mut g, hosts, &mut rng);
    g
}

/// Barabási-Albert preferential attachment: a complete seed clique of
/// `m + 1` routers, then each new router wires `m` links to targets
/// sampled proportionally to degree. Connected by construction.
pub fn barabasi_albert(n: usize, m: usize, hosts: usize, seed: u64) -> TopoGraph {
    assert!(m >= 1 && n > m + 1, "need n > m + 1 and m >= 1");
    let mut g = TopoGraph::new("barabasi_albert");
    for i in 0..n {
        g.add_node(format!("ba{i}"), NodeKind::Router);
    }
    let mut rng = SimRng::new(seed).fork(FORK_LINKS);
    let mut wire = rng.fork(FORK_WIRE);
    // `ends` lists every link endpoint twice; sampling an index uniformly
    // is sampling a node with probability proportional to its degree.
    let mut ends: Vec<usize> = Vec::with_capacity(2 * (m + 1 + (n - m - 1) * m));
    let m0 = m + 1;
    for i in 0..m0 {
        for j in (i + 1)..m0 {
            let latency = next_latency(&mut wire);
            g.link(i, j, LINK_RATE_BPS, latency);
            ends.push(i);
            ends.push(j);
        }
    }
    for v in m0..n {
        let mut chosen: Vec<usize> = Vec::with_capacity(m);
        // Bounded rejection sampling (duplicates/self), deterministic
        // fallback to the lowest-index unused node so the loop always
        // terminates with exactly `m` distinct targets.
        let mut attempts = 0;
        while chosen.len() < m {
            let candidate = if attempts < 16 * m {
                ends[wire.next_below(ends.len() as u64) as usize]
            } else {
                (0..v)
                    .find(|c| !chosen.contains(c))
                    .expect("v > m distinct predecessors exist")
            };
            attempts += 1;
            if candidate != v && !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        for &t in &chosen {
            let latency = next_latency(&mut wire);
            g.link(v, t, LINK_RATE_BPS, latency);
            ends.push(v);
            ends.push(t);
        }
    }
    attach_hosts_and_route(&mut g, hosts, &mut rng);
    g
}

/// Watts-Strogatz small world: a ring where each router links its
/// `k_neighbors / 2` nearest neighbors on each side, then each link's
/// far endpoint is rewired with probability `beta` (self-loops and
/// duplicate links rejected; a failed draw keeps the lattice edge, so
/// node and edge counts are always preserved).
pub fn watts_strogatz(
    n: usize,
    k_neighbors: usize,
    beta: f64,
    hosts: usize,
    seed: u64,
) -> TopoGraph {
    assert!(
        k_neighbors >= 2 && k_neighbors.is_multiple_of(2) && k_neighbors < n,
        "k_neighbors must be even, >= 2 and < n"
    );
    let mut g = TopoGraph::new("watts_strogatz");
    for i in 0..n {
        g.add_node(format!("ws{i}"), NodeKind::Router);
    }
    let mut rng = SimRng::new(seed).fork(FORK_LINKS);
    let mut wire = rng.fork(FORK_WIRE);
    for i in 0..n {
        for j in 1..=(k_neighbors / 2) {
            let latency = next_latency(&mut wire);
            g.link(i, (i + j) % n, LINK_RATE_BPS, latency);
        }
    }
    for li in 0..g.links.len() {
        if !wire.chance(beta) {
            continue;
        }
        let a = g.links[li].a;
        // Up to 8 draws for a valid new far endpoint; keep the lattice
        // edge otherwise.
        for _ in 0..8 {
            let candidate = wire.next_below(n as u64) as usize;
            if candidate != a && candidate != g.links[li].b && !g.linked(a, candidate) {
                // Rewire in place: the far endpoint moves to the
                // candidate's smallest free port (`free_port`, not
                // `port_count` — earlier rewires leave holes in the old
                // endpoint's numbering); `a`'s port is unchanged.
                let port = g.free_port(candidate);
                g.links[li].b = candidate;
                g.links[li].b_port = port;
                break;
            }
        }
    }
    ensure_connected(&mut g, &mut wire);
    attach_hosts_and_route(&mut g, hosts, &mut rng);
    g
}

/// 2D grid (optionally a torus): `rows × cols` routers, lattice links
/// with the shared [`stagger_latency`] scheme, `hosts` hosts.
pub fn grid2d(rows: usize, cols: usize, torus: bool, hosts: usize, seed: u64) -> TopoGraph {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2, "grid too small");
    let mut g = TopoGraph::new(if torus { "torus" } else { "grid" });
    for r in 0..rows {
        for c in 0..cols {
            g.add_node(format!("g{r}.{c}"), NodeKind::Router);
        }
    }
    let at = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.link(at(r, c), at(r, c + 1), LINK_RATE_BPS, stagger_latency(r, c));
            } else if torus && cols > 2 {
                g.link(at(r, c), at(r, 0), LINK_RATE_BPS, stagger_latency(r, c));
            }
            if r + 1 < rows {
                g.link(at(r, c), at(r + 1, c), LINK_RATE_BPS, stagger_latency(c, r));
            } else if torus && rows > 2 {
                g.link(at(r, c), at(0, c), LINK_RATE_BPS, stagger_latency(c, r));
            }
        }
    }
    let mut rng = SimRng::new(seed).fork(FORK_LINKS);
    attach_hosts_and_route(&mut g, hosts, &mut rng);
    g
}

/// The existing `netco_topo::fattree` Clos fabric as a [`TopoGraph`]:
/// same switch indices, port scheme, host MACs/IPs and deterministic
/// ECMP-style routes as [`FatTreeIndex`], so index-form computations
/// agree with the established fat-tree world. Host count is fixed by
/// the arity (`k³/4`).
pub fn fat_tree(k: usize, seed: u64) -> TopoGraph {
    let index = FatTreeIndex::new(k);
    let mut g = TopoGraph::new("fat_tree");
    for s in 0..index.switch_count() {
        g.add_node(index.switch_name(s), NodeKind::Router);
    }
    let mut rng = SimRng::new(seed).fork(FORK_LINKS);
    let mut wire = rng.fork(FORK_WIRE);
    let half = k / 2;
    for pod in 0..k {
        for e in 0..half {
            for a in 0..half {
                let (s, d) = (index.edge(pod, e), index.agg(pod, a));
                let (sp, dp) = index.ports_between(s, d).expect("edge-agg adjacency");
                let latency = next_latency(&mut wire);
                g.link_with_ports(s, sp, d, dp, LINK_RATE_BPS, latency);
            }
        }
        for a in 0..half {
            for i in 0..half {
                let (s, d) = (index.agg(pod, a), index.core(a * half + i));
                let (sp, dp) = index.ports_between(s, d).expect("agg-core adjacency");
                let latency = next_latency(&mut wire);
                g.link_with_ports(s, sp, d, dp, LINK_RATE_BPS, latency);
            }
        }
    }
    for h in 0..index.host_count() {
        let (pod, e, _) = index.host_position(h);
        let latency = next_latency(&mut wire);
        g.attach_host_at(
            index.edge(pod, e),
            index.host_port(h),
            index.host_mac(h),
            index.host_ip(h),
            LINK_RATE_BPS,
            latency,
        );
    }
    // The fat-tree's own deterministic ECMP-style routes, not plain BFS:
    // index-form route computations must agree with `FatTree::build`.
    g.routes = (0..g.nodes.len())
        .map(|s| (0..g.hosts.len()).map(|h| index.route_port(s, h)).collect())
        .collect();
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_seed_deterministic() {
        for (a, b) in [
            (
                erdos_renyi(24, 4.0, 10, 7).digest(),
                erdos_renyi(24, 4.0, 10, 7).digest(),
            ),
            (
                barabasi_albert(24, 2, 10, 7).digest(),
                barabasi_albert(24, 2, 10, 7).digest(),
            ),
            (
                watts_strogatz(24, 4, 0.1, 10, 7).digest(),
                watts_strogatz(24, 4, 0.1, 10, 7).digest(),
            ),
            (
                grid2d(4, 6, false, 10, 7).digest(),
                grid2d(4, 6, false, 10, 7).digest(),
            ),
            (fat_tree(4, 7).digest(), fat_tree(4, 7).digest()),
        ] {
            assert_eq!(a, b);
        }
        assert_ne!(
            erdos_renyi(24, 4.0, 10, 7).digest(),
            erdos_renyi(24, 4.0, 10, 8).digest(),
            "seed must matter"
        );
    }

    #[test]
    fn ba_degree_sum_matches_edge_count() {
        let g = barabasi_albert(40, 3, 10, 3);
        let m0 = 4;
        let expected = m0 * (m0 - 1) / 2 + (40 - m0) * 3;
        assert_eq!(g.links.len(), expected);
        assert!(g.is_connected());
    }

    #[test]
    fn ws_preserves_counts() {
        let g = watts_strogatz(30, 4, 0.3, 10, 9);
        assert_eq!(g.nodes.len(), 30);
        // 30 * 4 / 2 = 60 lattice edges, possibly + chain-up links.
        assert!(g.links.len() >= 60);
        assert!(g.is_connected());
    }

    #[test]
    fn fat_tree_matches_index_form() {
        let index = FatTreeIndex::new(4);
        let g = fat_tree(4, 1);
        assert_eq!(g.nodes.len(), index.switch_count());
        assert_eq!(g.hosts.len(), index.host_count());
        assert_eq!(g.links.len(), 4 * 2 * 2 * 2, "k^3/2 inter-switch links");
        // Host 0 to host 15 crosses edge-agg-core-agg-edge: 5 switches.
        assert_eq!(g.route_hops(0, 15), Some(5));
        // Same-edge pair: one switch.
        assert_eq!(g.route_hops(0, 1), Some(1));
        assert!(g.is_connected());
    }

    #[test]
    fn er_is_connected_and_routed() {
        let g = erdos_renyi(40, 3.0, 20, 11);
        assert!(g.is_connected());
        for h in 1..20 {
            assert!(g.route_hops(0, h).is_some(), "host 0 -> {h} unroutable");
        }
    }
}
