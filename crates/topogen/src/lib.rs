//! Deterministic topology generation and the "combiner everywhere"
//! campaign engine (ROADMAP open item 2).
//!
//! Everything the paper evaluates runs on its small fig4–fig8 worlds;
//! this crate supplies the scenario axis for evaluating NetCo on
//! *realistic fabrics at scale*, in three layers:
//!
//! 1. **Generators** ([`generate`]) — seed-keyed Erdős–Rényi,
//!    Barabási-Albert, Watts-Strogatz, 2D grid/torus and fat-tree/Clos
//!    graph generators, all emitting one pure index form ([`TopoGraph`]):
//!    nodes, links with rate/latency, host attachment points and
//!    shortest-path MAC-destination routes, computable without a
//!    simulator (the [`netco_topo::FatTreeIndex`] pattern,
//!    generalized).
//! 2. **NetCo-ization** ([`netcoize`]) — a pure
//!    `netcoize(&TopoGraph, NetcoizeSpec) -> TopoGraph` transform that
//!    replaces a selectable fraction of untrusted routers with the
//!    paper's robust combiner (one trusted inband guard per incident
//!    link, `k` untrusted replica switches, compare embedded in the
//!    egress guard), re-deriving the route tables so any generated
//!    topology becomes a runnable NetCo fabric; [`build::build_world`]
//!    turns the index form into a [`netco_net::World`] with one call.
//! 3. **Campaigns** ([`campaign`]) — the `topology_experiments` binary
//!    fans size × class × adversarial-replica-fraction × k sweeps across
//!    the [`netco_harness::Pool`], runs hundreds of routed ping tests
//!    per cell and reports availability, path stretch and goodput as
//!    deterministic JSON (bit-identical across reruns, thread counts and
//!    region counts).
//!
//! The [`lattice`] module is the single source of truth for the
//! row-lattice geometry shared with `netco_bench::grid` (the BENCH_PR7
//! `region_scale` world), so there is exactly one lattice builder in the
//! workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod campaign;
pub mod generate;
pub mod graph;
pub mod lattice;
pub mod netcoize;

pub use build::{build_world, AdversarySpec, BuiltTopo};
pub use graph::{NodeKind, TopoGraph, TopoHost, TopoLink, TopoNode, NO_ROUTE};
pub use netcoize::{netcoize, NetcoizeSpec};
