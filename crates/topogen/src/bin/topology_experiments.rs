//! The combiner-everywhere campaign driver.
//!
//! Fans a size × topology-class × adversarial-replica-fraction × k
//! sweep of NetCo-ized generated topologies across the harness pool and
//! prints the campaign as deterministic JSON on stdout — bit-identical
//! across reruns, `NETCO_THREADS` values and region counts.
//!
//! ```text
//! topology_experiments [--mode full|smoke] [--seed N]
//! ```
//!
//! `NETCO_THREADS` caps the worker pool (default: available
//! parallelism).

use netco_harness::Pool;
use netco_topogen::campaign::{render_json, run_campaign, CampaignConfig};

fn main() {
    let mut mode = String::from("full");
    let mut seed = 7u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => {
                mode = args.next().expect("--mode needs a value");
            }
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer");
            }
            "--help" | "-h" => {
                eprintln!("usage: topology_experiments [--mode full|smoke] [--seed N]");
                return;
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    let cfg = match mode.as_str() {
        "full" => CampaignConfig::full(seed),
        "smoke" => CampaignConfig::smoke(seed),
        other => panic!("unknown mode: {other} (expected full|smoke)"),
    };
    let pool = Pool::from_env();
    let result = run_campaign(&cfg, &pool);
    print!("{}", render_json(&cfg, &result));
}
