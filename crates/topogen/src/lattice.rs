//! The one lattice builder: row/column grid geometry shared between the
//! campaign grid generator and `netco_bench::grid` (the 400-switch
//! BENCH_PR7 `region_scale` world).
//!
//! Before this module existed, `netco_bench::grid` carried its own copy
//! of the staggered-latency formula, host MAC scheme and replica
//! datapath-id layout. Those constants are load-bearing — the PR 7
//! benchmark's bit-identity digests depend on them — so they live here
//! exactly once and `netco_bench::grid` consumes them (pinned by the
//! `grid_lattice_digest` regression test in netco-bench).

use netco_net::MacAddr;
use netco_sim::SimDuration;

use crate::graph::{NodeKind, TopoGraph};

/// Staggered positive link latency, `3 + ((row·7 + cell·3) mod 7) µs`:
/// every link latency is positive (the region partitioner never has to
/// contract a lattice edge) and no two rows tick in lockstep (the
/// space-parallel executor's horizon logic is exercised instead of
/// degenerating into a synchronous barrier per hop).
pub fn stagger_latency(row: usize, cell: usize) -> SimDuration {
    SimDuration::from_micros(3 + ((row * 7 + cell * 3) % 7) as u64)
}

/// The `rows × cells` east–west row lattice: per row, a path of `cells`
/// routers between a west and an east host. This is the geometry of the
/// BENCH_PR7 `region_scale` world (where every router is then a full
/// inband NetCo cell) and of the campaign engine's `row_grid` class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowGrid {
    /// Independent east–west rows.
    pub rows: usize,
    /// Routers (NetCo cells) per row.
    pub cells: usize,
}

impl RowGrid {
    /// A non-empty lattice.
    ///
    /// # Panics
    ///
    /// Panics on an empty dimension.
    pub fn new(rows: usize, cells: usize) -> RowGrid {
        assert!(rows > 0 && cells > 0, "grid must be non-empty");
        RowGrid { rows, cells }
    }

    /// West-side host MAC for `row`.
    pub fn west_mac(row: u16) -> MacAddr {
        MacAddr::local(0x1000 + 2 * row as u32)
    }

    /// East-side host MAC for `row`.
    pub fn east_mac(row: u16) -> MacAddr {
        MacAddr::local(0x1000 + 2 * row as u32 + 1)
    }

    /// Per-row ping-pong payload length, staggered so no two rows share
    /// a frame size (and therefore a fingerprint cadence).
    pub fn payload_len(row: u16) -> usize {
        64 + (row as usize * 13) % 400
    }

    /// The latency of the link *west of* cell `cell` in `row` (so
    /// `cell == self.cells` is the east tail link to the east host).
    pub fn latency(&self, row: usize, cell: usize) -> SimDuration {
        stagger_latency(row, cell)
    }

    /// Deterministic datapath id of replica `i` (1-based) of the NetCo
    /// cell at `(row, cell)`.
    pub fn replica_datapath_id(row: usize, cell: usize, i: u16) -> u64 {
        0x4000_0000 | (row as u64) << 16 | (cell as u64) << 4 | i as u64
    }

    /// Switches one NetCo-ized cell contributes: 2 guards + `k` replicas.
    pub fn switches_per_cell(k: usize) -> usize {
        2 + k
    }

    /// The lattice as a pure [`TopoGraph`]: `rows·cells` routers in
    /// row-major order, each row a west→east path, host pair per row
    /// (west first), link latencies from [`RowGrid::latency`]. Routes
    /// installed. This is the index form the NetCo-ization transform
    /// turns into the same cell structure `netco_bench::grid` builds.
    pub fn graph(&self) -> TopoGraph {
        let mut g = TopoGraph::new("row_grid");
        let rate = 1_000_000_000;
        for row in 0..self.rows {
            for cell in 0..self.cells {
                g.add_node(format!("r{row}.{cell}"), NodeKind::Router);
            }
        }
        for row in 0..self.rows {
            let first = row * self.cells;
            // West host on the row's first router (the west tail link),
            // then the east-going path, then the east host.
            g.attach_host(
                first,
                RowGrid::west_mac(row as u16),
                std::net::Ipv4Addr::new(10, 90, row as u8, 1),
                rate,
                self.latency(row, 0),
            );
            for cell in 1..self.cells {
                g.link(
                    first + cell - 1,
                    first + cell,
                    rate,
                    self.latency(row, cell),
                );
            }
            g.attach_host(
                first + self.cells - 1,
                RowGrid::east_mac(row as u16),
                std::net::Ipv4Addr::new(10, 90, row as u8, 2),
                rate,
                self.latency(row, self.cells),
            );
        }
        g.install_shortest_path_routes();
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stagger_is_positive_and_periodic() {
        for row in 0..20 {
            for cell in 0..20 {
                let lat = stagger_latency(row, cell);
                assert!(lat >= SimDuration::from_micros(3));
                assert!(lat <= SimDuration::from_micros(9));
            }
        }
        assert_ne!(stagger_latency(0, 0), stagger_latency(0, 1));
    }

    #[test]
    fn row_grid_graph_shape() {
        let g = RowGrid::new(4, 3).graph();
        assert_eq!(g.nodes.len(), 12);
        assert_eq!(g.links.len(), 4 * 2, "2 internal links per 3-cell row");
        assert_eq!(g.hosts.len(), 8);
        assert!(g.is_connected() || g.components().len() == 4);
        // Each row's west->east path crosses all 3 routers.
        assert_eq!(g.route_hops(0, 1), Some(3));
        // MAC/payload schemes are the BENCH_PR7 constants.
        assert_eq!(RowGrid::west_mac(3), MacAddr::local(0x1000 + 6));
        assert_eq!(RowGrid::payload_len(2), 90);
        assert_eq!(
            RowGrid::replica_datapath_id(1, 2, 3),
            0x4000_0000 | 1 << 16 | 2 << 4 | 3
        );
    }
}
