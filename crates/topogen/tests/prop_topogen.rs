//! Property tests for the topology generators and the NetCo-ization
//! transform (ISSUE 9): seed determinism is byte-exact, connectivity is
//! restored (or islands reported) for every draw, Barabási-Albert obeys
//! its degree-sum arithmetic, Watts-Strogatz preserves node and edge
//! counts through rewiring, and `netcoize` at fraction 0 is the identity.

use netco_topogen::generate::{barabasi_albert, erdos_renyi, grid2d, watts_strogatz};
use netco_topogen::{netcoize, NetcoizeSpec, NodeKind, TopoGraph};
use proptest::prelude::*;

/// Degree of `node` counted from the link list (host attachments are
/// tracked separately and deliberately excluded).
fn degree(g: &TopoGraph, node: usize) -> usize {
    g.links
        .iter()
        .filter(|l| l.a == node || l.b == node)
        .count()
}

proptest! {
    /// Same parameters, same seed → byte-identical graphs, across every
    /// generator family; a different seed must perturb the randomized
    /// families.
    #[test]
    fn same_seed_builds_byte_identical_graphs(
        n in 6usize..32,
        seed in any::<u64>(),
        hosts in 0usize..12,
    ) {
        let pairs = [
            (
                erdos_renyi(n, 3.0, hosts, seed).digest(),
                erdos_renyi(n, 3.0, hosts, seed).digest(),
            ),
            (
                barabasi_albert(n, 2, hosts, seed).digest(),
                barabasi_albert(n, 2, hosts, seed).digest(),
            ),
            (
                watts_strogatz(n, 4, 0.2, hosts, seed).digest(),
                watts_strogatz(n, 4, 0.2, hosts, seed).digest(),
            ),
            (
                grid2d(3, n.div_ceil(3), n % 2 == 0, hosts, seed).digest(),
                grid2d(3, n.div_ceil(3), n % 2 == 0, hosts, seed).digest(),
            ),
        ];
        for (a, b) in pairs {
            prop_assert_eq!(a, b, "same seed must rebuild the same bytes");
        }
        // The seed must reach the wiring.
        prop_assert_ne!(
            erdos_renyi(n, 3.0, hosts, seed).digest(),
            erdos_renyi(n, 3.0, hosts, seed.wrapping_add(1)).digest(),
        );
    }

    /// Every draw either comes out connected or its islands were chained:
    /// the emitted graph always reports exactly one component, and every
    /// host pair is mutually routable.
    #[test]
    fn generated_graphs_are_connected_and_routed(
        n in 6usize..32,
        seed in any::<u64>(),
        sparse in any::<bool>(),
    ) {
        // Sparse ER draws (avg degree 1) island frequently; the generator
        // must chain them rather than emit an unroutable fabric.
        let avg = if sparse { 1.0 } else { 4.0 };
        let g = erdos_renyi(n, avg, 6, seed);
        prop_assert_eq!(g.components().len(), 1, "islands must be chained");
        prop_assert!(g.is_connected());
        for a in 0..g.hosts.len() {
            for b in 0..g.hosts.len() {
                if a != b {
                    prop_assert!(
                        g.route_hops(a, b).is_some(),
                        "host {} -> {} unroutable", a, b
                    );
                }
            }
        }
    }

    /// Barabási-Albert arithmetic: a complete `m + 1` clique plus `m`
    /// links per later node, so the degree sum is exactly twice that, and
    /// preferential attachment never disconnects the graph.
    #[test]
    fn ba_degree_sum_matches_the_attachment_arithmetic(
        n in 8usize..40,
        m in 1usize..4,
        seed in any::<u64>(),
    ) {
        prop_assume!(n > m + 1);
        let g = barabasi_albert(n, m, 4, seed);
        let m0 = m + 1;
        let links = m0 * (m0 - 1) / 2 + (n - m0) * m;
        prop_assert_eq!(g.links.len(), links);
        let degree_sum: usize = (0..g.nodes.len()).map(|v| degree(&g, v)).sum();
        prop_assert_eq!(degree_sum, 2 * links, "every link contributes two ends");
        // Seed-clique members accrete attachment; no node exceeds them by
        // construction of the clique (they start with the max degree).
        prop_assert!(g.is_connected());
    }

    /// Watts-Strogatz rewiring moves far endpoints but never creates or
    /// destroys nodes or lattice edges; only island-chaining may add.
    #[test]
    fn ws_rewiring_preserves_counts(
        n in 8usize..40,
        beta_pct in 0u32..100,
        seed in any::<u64>(),
    ) {
        let k = 4;
        let beta = f64::from(beta_pct) / 100.0;
        let g = watts_strogatz(n, k, beta, 5, seed);
        prop_assert_eq!(g.nodes.len(), n, "rewiring must not add nodes");
        let lattice = n * k / 2;
        prop_assert!(
            g.links.len() >= lattice,
            "rewiring must preserve the lattice edges: {} < {}",
            g.links.len(),
            lattice
        );
        if beta_pct == 0 {
            prop_assert_eq!(
                g.links.len(),
                lattice,
                "beta 0 must be exactly the ring lattice"
            );
        }
        prop_assert!(g.nodes.iter().all(|node| node.kind == NodeKind::Router));
        prop_assert!(g.is_connected());
        // Rewiring must never double-book a (node, port) endpoint —
        // the regression that broke `netcoize` on rewired draws.
        let mut endpoints: Vec<(usize, u16)> = g
            .links
            .iter()
            .flat_map(|l| [(l.a, l.a_port), (l.b, l.b_port)])
            .chain(g.hosts.iter().map(|h| (h.attach, h.attach_port)))
            .collect();
        let total = endpoints.len();
        endpoints.sort_unstable();
        endpoints.dedup();
        prop_assert_eq!(endpoints.len(), total, "duplicate (node, port) endpoint");
    }

    /// `netcoize` at fraction 0 is the identity, byte for byte; at
    /// fraction 1 every router becomes a combiner cell with one guard per
    /// former attachment and exactly `k` replicas per site.
    #[test]
    fn netcoize_fraction_zero_is_identity(
        n in 6usize..24,
        k in 2usize..5,
        seed in any::<u64>(),
    ) {
        let base = barabasi_albert(n, 2, 6, seed);
        let zero = NetcoizeSpec { fraction: 0.0, k, seed };
        prop_assert_eq!(
            netcoize(&base, &zero).digest(),
            base.digest(),
            "fraction 0 must not touch a single byte"
        );
        let full = netcoize(&base, &NetcoizeSpec::full(k, seed));
        let (routers, guards, replicas) = full.kind_counts();
        prop_assert_eq!(routers, 0, "full netcoization leaves no bare router");
        prop_assert_eq!(guards, 2 * base.links.len() + base.hosts.len());
        prop_assert_eq!(replicas, n * k);
    }
}
