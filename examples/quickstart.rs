//! Quickstart: build the paper's reference combiner (Fig. 3, k = 3), ping
//! through it, then corrupt one replica and watch NetCo shrug it off.
//!
//! Run with: `cargo run --example quickstart`

use netco_adversary::{ActivationWindow, Behavior};
use netco_core::Compare;
use netco_openflow::FlowMatch;
use netco_sim::SimDuration;
use netco_topo::{AdversarySpec, Profile, Scenario, ScenarioKind, H2_IP};
use netco_traffic::{IcmpEchoResponder, PingConfig, Pinger};

fn main() {
    // 1. A clean k = 3 combiner: h1 – s1 – {r1,r2,r3} – s2 – h2, with the
    //    compare on a trusted host h3.
    let scenario = Scenario::build(ScenarioKind::Central3, Profile::default(), 42);
    let report = scenario.run_ping(PingConfig::default().with_count(20));
    println!(
        "clean combiner : {}/{} pings, avg RTT {}",
        report.received,
        report.transmitted,
        report.avg.map(|d| d.to_string()).unwrap_or_default()
    );

    // 2. Now replica r2 corrupts every packet it forwards.
    let attacked = scenario.clone_with_corrupting_replica();
    let mut built = attacked.build_world(
        0,
        |nic| Pinger::new(nic, PingConfig::new(H2_IP).with_count(20)),
        IcmpEchoResponder::new,
    );
    built.world.run_for(SimDuration::from_secs(2));
    let report = built.world.device::<Pinger>(built.h1).unwrap().report();
    let compare = built
        .world
        .device::<Compare>(built.compare.unwrap())
        .unwrap();
    println!(
        "corrupting r2  : {}/{} pings still complete (2-of-3 majority)",
        report.received, report.transmitted
    );
    println!(
        "compare        : {} copies suppressed, {} security events:",
        compare.stats().expired_unreleased,
        compare.events().len()
    );
    for e in compare.events().iter().take(4) {
        println!("  [{}] {}", e.at, e.record);
    }
    if compare.events().len() > 4 {
        println!("  ... and {} more", compare.events().len() - 4);
    }
}

/// Small helper so the example reads linearly.
trait WithAdversary {
    fn clone_with_corrupting_replica(&self) -> Scenario;
}

impl WithAdversary for Scenario {
    fn clone_with_corrupting_replica(&self) -> Scenario {
        self.clone().with_adversary(AdversarySpec {
            replica_index: 1,
            behaviors: vec![(
                Behavior::CorruptPayload {
                    select: FlowMatch::any(),
                    every_nth: 1,
                },
                ActivationWindow::always(),
            )],
        })
    }
}
