//! DoS containment (paper §IV, case 2): a malicious replica floods
//! crafted packets; the compare never releases them, raises a DoS alarm
//! and advises the guard to block the offending port — all while the
//! legitimate flow continues.
//!
//! Run with: `cargo run --example dos_mitigation`

use bytes::Bytes;
use netco_adversary::{ActivationWindow, Behavior};
use netco_core::{Compare, GuardSwitch, SecurityEvent};
use netco_net::{MacAddr, PortId};
use netco_sim::{SimDuration, SimTime};
use netco_topo::{AdversarySpec, Profile, Scenario, ScenarioKind, H2_IP, H2_MAC};
use netco_traffic::{IcmpEchoResponder, PingConfig, Pinger};

fn main() {
    // Replica r3 starts flooding a crafted packet at t = 200 ms, 10 kpps.
    let crafted = netco_net::packet::builder::udp_frame(
        MacAddr::local(0xbad),
        H2_MAC,
        std::net::Ipv4Addr::new(6, 6, 6, 6),
        H2_IP,
        31337,
        31337,
        Bytes::from_static(b"flood"),
        None,
    );
    let scenario = Scenario::build(ScenarioKind::Central3, Profile::default(), 7).with_adversary(
        AdversarySpec {
            replica_index: 2,
            behaviors: vec![(
                Behavior::InjectCbr {
                    frame: crafted,
                    out_port: PortId(2),
                    interval: SimDuration::from_micros(100),
                },
                ActivationWindow::starting_at(SimTime::ZERO + SimDuration::from_millis(200)),
            )],
        },
    );
    let mut built = scenario.build_world(
        0,
        |nic| {
            Pinger::new(
                nic,
                PingConfig::new(H2_IP)
                    .with_count(100)
                    .with_interval(SimDuration::from_millis(10)),
            )
        },
        IcmpEchoResponder::new,
    );
    built.world.run_for(SimDuration::from_secs(2));

    let report = built.world.device::<Pinger>(built.h1).unwrap().report();
    let compare = built
        .world
        .device::<Compare>(built.compare.unwrap())
        .unwrap();
    let guard_s2 = built.world.device::<GuardSwitch>(built.guards[1]).unwrap();
    println!(
        "legitimate pings : {}/{} completed",
        report.received, report.transmitted
    );
    println!(
        "adversary        : {} crafted frames injected",
        built
            .world
            .device::<netco_adversary::MaliciousSwitch>(built.routers[2])
            .unwrap()
            .stats()
            .injected
    );
    println!(
        "guard s2         : {} frames dropped on the blocked port",
        guard_s2.stats().blocked_drops
    );
    println!("compare events   :");
    let mut shown = 0;
    for e in compare.events() {
        match &e.record {
            SecurityEvent::DosSuspected { .. }
            | SecurityEvent::PortBlocked { .. }
            | SecurityEvent::ReplicaSuspectedDown { .. }
                if shown < 6 =>
            {
                println!("  [{}] {}", e.at, e.record);
                shown += 1;
            }
            _ => {}
        }
    }
    assert_eq!(
        report.received, report.transmitted,
        "flood must not harm service"
    );
}
