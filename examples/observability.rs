//! The paper's two screening methods as reusable tools: a tcpdump-style
//! trace ([`TraceRecorder`]) and periodic flow-counter polling
//! ([`FlowStatsMonitor`]) — here watching a combiner under a mirroring
//! attack — plus the self-healing supervisor's quarantine timeline under
//! a scripted flapping replica, with every run observed through the
//! `netco-telemetry` registry.
//!
//! Run with: `cargo run --example observability`
//!
//! Pass `--json` to print one canonical metrics snapshot as a single JSON
//! document on stdout (nothing else), suitable for piping into
//! `python3 -m json.tool` or CI artifact checks. The snapshot combines the
//! data-plane quarantine run and the control-plane voting run (the
//! `ctlvote.*` cells) in one registry.

use netco_adversary::{ActivationWindow, Behavior};
use netco_bench::control_chaos;
use netco_controller::apps::FlowStatsMonitor;
use netco_controller::Controller;
use netco_core::{Compare, ControlVoter, SecurityEvent, SupervisorConfig};
use netco_net::{CpuModel, PortId, TraceRecorder};
use netco_openflow::{FlowMatch, OfSwitch};
use netco_sim::{SimDuration, SimTime};
use netco_telemetry::TelemetrySink;
use netco_topo::{AdversarySpec, BuiltScenario, FaultKind, Profile, Scenario, ScenarioKind, H2_IP};
use netco_traffic::{IcmpEchoResponder, PingConfig, Pinger};

fn main() {
    if std::env::args().any(|a| a == "--json") {
        // Machine mode: one canonical registry snapshot, nothing else.
        // Both chaos worlds feed the same sink, so the document carries
        // the data-plane lifecycle histograms *and* the control-plane
        // `ctlvote.*` cells.
        let sink = TelemetrySink::enabled();
        let _ = run_quarantine_scenario(sink.clone());
        let _ = control_chaos::run_with_sink(Some(sink.clone()));
        print!("{}", sink.metrics_json());
        return;
    }
    mirror_attack_screening();
    quarantine_timeline();
    control_vote_timeline();
}

/// A combiner whose replica r1 mirrors fw-bound packets the wrong way,
/// screened three ways: tcpdump-style trace, honest flow counters, and
/// the telemetry registry's frame/drop counters.
fn mirror_attack_screening() {
    let scenario = Scenario::build(ScenarioKind::Central3, Profile::default(), 17).with_adversary(
        AdversarySpec {
            replica_index: 0,
            behaviors: vec![(
                Behavior::Mirror {
                    select: FlowMatch::any().with_in_port(1),
                    to_port: PortId(1),
                },
                ActivationWindow::always(),
            )],
        },
    );
    let mut built = scenario.build_world(
        0,
        |nic| Pinger::new(nic, PingConfig::new(H2_IP).with_count(5)),
        IcmpEchoResponder::new,
    );
    let sink = TelemetrySink::enabled();
    built.world.set_telemetry(sink.clone());

    // Screening method 1: tcpdump on every interface.
    let trace = TraceRecorder::new();
    trace.attach(&mut built.world);

    // Screening method 2: poll the honest replicas' flow counters.
    let ctl = built.world.add_node(
        "monitor",
        Controller::new(FlowStatsMonitor::new()).with_tick(SimDuration::from_millis(20)),
        CpuModel::default(),
    );
    for &r in &built.routers[1..] {
        // r1 is malicious and would lie anyway; watch the honest ones.
        built.world.connect_control(r, ctl, Default::default());
        built
            .world
            .device_mut::<OfSwitch>(r)
            .expect("honest replicas are OpenFlow switches")
            .set_controller(ctl);
        built.world.device_mut::<Controller>(ctl).unwrap().manage(r);
    }

    built.world.run_for(SimDuration::from_secs(1));

    let report = built.world.device::<Pinger>(built.h1).unwrap().report();
    println!(
        "pings          : {}/{}",
        report.received, report.transmitted
    );

    println!("\nflow counters (honest replicas):");
    let monitor = built
        .world
        .device::<Controller>(ctl)
        .unwrap()
        .app::<FlowStatsMonitor>()
        .unwrap();
    for &r in &built.routers[1..] {
        println!(
            "  {:<4} matched {} packets across {} flows",
            built.world.node_name(r),
            monitor.total_packets(r),
            monitor.snapshot(r).map_or(0, |s| s.len())
        );
    }

    println!("\ntcpdump-style per-node Rx totals:");
    let hist = trace.rx_histogram();
    let mut nodes: Vec<_> = hist.iter().collect();
    nodes.sort_by_key(|(n, _)| n.index());
    for (node, count) in nodes {
        println!("  {:<12} {count}", built.world.node_name(*node));
    }

    println!("\nlast few observations at the compare:");
    let compare = built.compare.unwrap();
    for e in trace.received_at(compare).iter().rev().take(3).rev() {
        println!("  [{}] {}", e.at, e.summary);
    }

    // Screening method 3: the registry the trace and world now feed.
    println!("\ntelemetry registry (mirror-attack world):");
    println!(
        "  events processed       : {}",
        sink.counter("sim.events_processed").get()
    );
    println!(
        "  frames traced (rx/tx)  : {}/{}",
        sink.counter("trace.rx_frames").get(),
        sink.counter("trace.tx_frames").get()
    );
    println!(
        "  flow-table hits/misses : {}/{}",
        sink.counter("openflow.table_hits").get(),
        sink.counter("openflow.table_misses").get()
    );
}

/// Builds and runs the flapping-replica scenario feeding `sink`,
/// returning the finished world.
fn run_quarantine_scenario(sink: TelemetrySink) -> BuiltScenario {
    let at_ms = |ms: u64| SimTime::ZERO + SimDuration::from_millis(ms);
    let scenario = Scenario::build(ScenarioKind::Central3, Profile::functional(), 33)
        .with_miss_alarm_threshold(3)
        .with_supervisor(
            SupervisorConfig::default()
                .with_quarantine_strikes(1)
                .with_probation_delay(SimDuration::from_millis(50))
                .with_readmit_streak(4)
                .with_escalation_cap(2),
        )
        .with_replica_fault(
            1,
            FaultKind::Flaps {
                first_down: at_ms(150),
                down_for: SimDuration::from_millis(100),
                up_for: SimDuration::from_millis(150),
                cycles: 3,
            },
        );
    let mut built = scenario.build_world(
        0,
        |nic| {
            Pinger::new(
                nic,
                PingConfig::new(H2_IP)
                    .with_count(100)
                    .with_interval(SimDuration::from_millis(10)),
            )
        },
        IcmpEchoResponder::new,
    );
    built.world.set_telemetry(sink);
    built.world.run_for(SimDuration::from_secs(2));
    built
}

/// Screening method 4: the supervisor's own event log. A flapping replica
/// is quarantined, the lane degrades to detection, and after probation the
/// replica is re-admitted — all visible as timestamped security events and
/// as packet-lifecycle latency histograms in the registry snapshot.
fn quarantine_timeline() {
    let sink = TelemetrySink::enabled();
    let built = run_quarantine_scenario(sink.clone());

    let report = built.world.device::<Pinger>(built.h1).unwrap().report();
    println!("\nquarantine timeline (r2 flaps 3×, supervisor attached):");
    println!(
        "  pings          : {}/{}",
        report.received, report.transmitted
    );
    let compare_node = built.compare.unwrap();
    let compare = built.world.device::<Compare>(compare_node).unwrap();
    for e in compare.events().iter() {
        let interesting = matches!(
            e.record,
            SecurityEvent::ReplicaQuarantined { .. }
                | SecurityEvent::ReplicaProbation { .. }
                | SecurityEvent::ReplicaReadmitted { .. }
                | SecurityEvent::ModeDegraded { .. }
                | SecurityEvent::ModeRestored { .. }
        );
        if interesting {
            println!("  [{:>7.3} ms] {}", e.at.as_nanos() as f64 / 1e6, e.record);
        }
    }

    let counts = compare.stats().events;
    println!("\nper-kind event counters:");
    println!("  single-path alarms     : {}", counts.single_path);
    println!("  detection mismatches   : {}", counts.detection_mismatch);
    println!(
        "  replica-down alarms    : {}",
        counts.replica_suspected_down
    );
    println!("  replica recoveries     : {}", counts.replica_recovered);
    println!("  quarantines            : {}", counts.quarantines);
    println!("  probations             : {}", counts.probations);
    println!("  re-admissions          : {}", counts.readmissions);
    println!("  degradations           : {}", counts.degradations);
    println!("  restorations           : {}", counts.restorations);
    println!("  total alarms           : {}", counts.alarms());

    // The same story, told by the registry: per-stage packet latencies
    // and the compare's scoped counters.
    let scope = built.world.node_name(compare_node);
    println!("\ntelemetry registry (quarantine world):");
    println!(
        "  compare received/released : {}/{}",
        sink.counter(&format!("compare.{scope}.received")).get(),
        sink.counter(&format!("compare.{scope}.released")).get()
    );
    for name in [
        "lifecycle.hub_to_replica_ns",
        "lifecycle.replica_to_compare_ns",
        "lifecycle.compare_to_verdict_ns",
        "lifecycle.end_to_end_ns",
    ] {
        let s = sink.histogram(name).snapshot();
        println!(
            "  {name:<32} count {:>4}  p50 {:>7}  p99 {:>7}  max {:>7}",
            s.count, s.p50, s.p99, s.max
        );
    }
    println!(
        "  (run with --json for the full canonical snapshot; a chrome-trace\n   of the same scenario comes from `perf_report --telemetry <dir>`)"
    );
}

/// Screening method 5: the replicated control plane's own vote counters.
/// Controller `pox1` equivocates for half a second; each guard's voter
/// out-votes it, counts the disagreements against exactly that replica,
/// and the supervisor runs it through quarantine and back.
fn control_vote_timeline() {
    let sink = TelemetrySink::enabled();
    let built = control_chaos::run_with_sink(Some(sink.clone()));

    let report = built.world.device::<Pinger>(built.h1).unwrap().report();
    println!("\ncontrol-plane voting (pox1 equivocates 150–650 ms, 3 replicas):");
    println!(
        "  pings          : {}/{}",
        report.received, report.transmitted
    );
    for &v in &built.voters {
        let scope = built.world.node_name(v).to_string();
        let voter = built.world.device::<ControlVoter>(v).unwrap();
        let stats = voter.stats();
        println!(
            "  {scope}: sent {} voted {} rejected {} relayed {} disagreements {:?}",
            stats.sent, stats.voted, stats.rejected, stats.relayed, stats.disagreements
        );
        for e in voter.events().iter() {
            let interesting = matches!(
                e.record,
                SecurityEvent::ReplicaQuarantined { .. }
                    | SecurityEvent::ReplicaProbation { .. }
                    | SecurityEvent::ReplicaReadmitted { .. }
                    | SecurityEvent::ModeDegraded { .. }
                    | SecurityEvent::ModeRestored { .. }
            );
            if interesting {
                println!(
                    "    [{:>7.3} ms] {}",
                    e.at.as_nanos() as f64 / 1e6,
                    e.record
                );
            }
        }
        let lat = sink
            .histogram(&format!("ctlvote.{scope}.vote_latency_ns"))
            .snapshot();
        println!(
            "    vote latency: count {:>4}  p50 {:>7}  p99 {:>7}  max {:>7}",
            lat.count, lat.p50, lat.p99, lat.max
        );
    }
}
