//! The paper's two screening methods as reusable tools: a tcpdump-style
//! trace ([`TraceRecorder`]) and periodic flow-counter polling
//! ([`FlowStatsMonitor`]) — here watching a combiner under a mirroring
//! attack.
//!
//! Run with: `cargo run --example observability`

use netco_adversary::{ActivationWindow, Behavior};
use netco_controller::apps::FlowStatsMonitor;
use netco_controller::Controller;
use netco_net::{CpuModel, PortId, TraceRecorder};
use netco_openflow::{FlowMatch, OfSwitch};
use netco_sim::SimDuration;
use netco_topo::{AdversarySpec, Profile, Scenario, ScenarioKind, H2_IP};
use netco_traffic::{IcmpEchoResponder, PingConfig, Pinger};

fn main() {
    // A combiner whose replica r1 mirrors fw-bound packets the wrong way.
    let scenario = Scenario::build(ScenarioKind::Central3, Profile::default(), 17).with_adversary(
        AdversarySpec {
            replica_index: 0,
            behaviors: vec![(
                Behavior::Mirror {
                    select: FlowMatch::any().with_in_port(1),
                    to_port: PortId(1),
                },
                ActivationWindow::always(),
            )],
        },
    );
    let mut built = scenario.build_world(
        0,
        |nic| Pinger::new(nic, PingConfig::new(H2_IP).with_count(5)),
        IcmpEchoResponder::new,
    );

    // Screening method 1: tcpdump on every interface.
    let trace = TraceRecorder::new();
    trace.attach(&mut built.world);

    // Screening method 2: poll the honest replicas' flow counters.
    let ctl = built.world.add_node(
        "monitor",
        Controller::new(FlowStatsMonitor::new()).with_tick(SimDuration::from_millis(20)),
        CpuModel::default(),
    );
    for &r in &built.routers[1..] {
        // r1 is malicious and would lie anyway; watch the honest ones.
        built.world.connect_control(r, ctl, Default::default());
        built
            .world
            .device_mut::<OfSwitch>(r)
            .expect("honest replicas are OpenFlow switches")
            .set_controller(ctl);
        built.world.device_mut::<Controller>(ctl).unwrap().manage(r);
    }

    built.world.run_for(SimDuration::from_secs(1));

    let report = built.world.device::<Pinger>(built.h1).unwrap().report();
    println!(
        "pings          : {}/{}",
        report.received, report.transmitted
    );

    println!("\nflow counters (honest replicas):");
    let monitor = built
        .world
        .device::<Controller>(ctl)
        .unwrap()
        .app::<FlowStatsMonitor>()
        .unwrap();
    for &r in &built.routers[1..] {
        println!(
            "  {:<4} matched {} packets across {} flows",
            built.world.node_name(r),
            monitor.total_packets(r),
            monitor.snapshot(r).map_or(0, |s| s.len())
        );
    }

    println!("\ntcpdump-style per-node Rx totals:");
    let hist = trace.rx_histogram();
    let mut nodes: Vec<_> = hist.iter().collect();
    nodes.sort_by_key(|(n, _)| n.index());
    for (node, count) in nodes {
        println!("  {:<12} {count}", built.world.node_name(*node));
    }

    println!("\nlast few observations at the compare:");
    let compare = built.compare.unwrap();
    for e in trace.received_at(compare).iter().rev().take(3).rev() {
        println!("  [{}] {}", e.at, e.summary);
    }
}
