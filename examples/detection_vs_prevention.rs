//! Detection (k = 2) vs prevention (k = 3), paper §III: "for detecting
//! misbehavior, two are enough, for prevention, we need three."
//!
//! Run with: `cargo run --example detection_vs_prevention`

use netco_adversary::{ActivationWindow, Behavior};
use netco_core::{Compare, SecurityEvent};
use netco_openflow::FlowMatch;
use netco_sim::SimDuration;
use netco_topo::{AdversarySpec, Direction, Profile, Scenario, ScenarioKind, H2_IP};
use netco_traffic::{IcmpEchoResponder, PingConfig, Pinger};

fn corrupting(kind: ScenarioKind) -> Scenario {
    Scenario::build(kind, Profile::default(), 3).with_adversary(AdversarySpec {
        replica_index: 0,
        behaviors: vec![(
            Behavior::CorruptPayload {
                select: FlowMatch::any(),
                every_nth: 1,
            },
            ActivationWindow::always(),
        )],
    })
}

fn main() {
    println!("One replica corrupts every packet it forwards.\n");
    for kind in [ScenarioKind::Detect2, ScenarioKind::Central3] {
        let mut built = corrupting(kind).build_world(
            0,
            |nic| Pinger::new(nic, PingConfig::new(H2_IP).with_count(20)),
            IcmpEchoResponder::new,
        );
        built.world.run_for(SimDuration::from_secs(2));
        let report = built.world.device::<Pinger>(built.h1).unwrap().report();
        let compare = built
            .world
            .device::<Compare>(built.compare.unwrap())
            .unwrap();
        let mismatches = compare
            .events()
            .iter()
            .filter(|e| matches!(e.record, SecurityEvent::DetectionMismatch { .. }))
            .count();
        let suppressed = compare.stats().expired_unreleased;
        println!("{kind} (k = {}):", kind.k());
        println!(
            "  ping cycles ........ {}/{}",
            report.received, report.transmitted
        );
        println!("  copies suppressed .. {suppressed}");
        println!("  mismatch alarms .... {mismatches}");
        match kind {
            ScenarioKind::Detect2 => println!(
                "  → corrupted copies were *released* (first-copy forwarding) but\n    every one raised an alarm: detection, not prevention.\n"
            ),
            _ => println!(
                "  → corrupted copies never left the compare: prevention.\n"
            ),
        }
    }

    // The cost side: detection needs one replica fewer and is faster.
    println!("TCP goodput (800 ms transfer):");
    for kind in [
        ScenarioKind::Linespeed,
        ScenarioKind::Detect2,
        ScenarioKind::Central3,
    ] {
        let out = Scenario::build(kind, Profile::default(), 3).run_tcp(
            Direction::H1ToH2,
            SimDuration::from_millis(800),
            0,
        );
        println!("  {:<10} {:>7.1} Mbit/s", kind.name(), out.mbps);
    }
}
