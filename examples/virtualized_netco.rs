//! The §VII virtualized NetCo: no replica routers — flow copies travel
//! three vendor-diverse VLAN tunnels across a k = 6 fat-tree, combined
//! inband at the egress (Fig. 9).
//!
//! Run with: `cargo run --example virtualized_netco`

use netco_adversary::{ActivationWindow, Behavior};
use netco_openflow::FlowMatch;
use netco_topo::virtual_netco::{run_ping, VirtualNetcoConfig};
use netco_topo::Profile;

fn main() {
    let profile = Profile::default();

    let clean = run_ping(&VirtualNetcoConfig::default(), &profile, 11);
    println!(
        "vendor-diverse tunnels (diverse = {}):",
        clean.vendor_diverse
    );
    for (i, path) in clean.tunnel_paths.iter().enumerate() {
        println!("  tunnel {i}: {}", path.join(" -> "));
    }
    println!(
        "\nclean run        : {}/{} pings, {} releases at the egress guard",
        clean.ping.received, clean.ping.transmitted, clean.released_at_dst
    );

    let attacked = run_ping(
        &VirtualNetcoConfig {
            corrupt_tunnel: Some((
                1,
                vec![(
                    Behavior::Drop {
                        select: FlowMatch::any(),
                    },
                    ActivationWindow::always(),
                )],
            )),
            ..VirtualNetcoConfig::default()
        },
        &profile,
        11,
    );
    println!(
        "tunnel 1 blackholed: {}/{} pings still complete (2-of-3 tunnels)",
        attacked.ping.received, attacked.ping.transmitted
    );
    println!(
        "                     avg RTT {} (clean: {})",
        attacked.ping.avg.map(|d| d.to_string()).unwrap_or_default(),
        clean.ping.avg.map(|d| d.to_string()).unwrap_or_default()
    );
}
