//! The paper's §VI case study: a malicious aggregation switch in a Clos
//! pod mirrors firewall-bound traffic toward the core and drops all
//! responses — then NetCo is deployed around it.
//!
//! Run with: `cargo run --example datacenter_attack`

use netco_topo::case_study::{run, Phase};
use netco_topo::Profile;

fn main() {
    let profile = Profile::default();
    println!("§VI datacenter routing attack — 10 ICMP echo cycles vm1 → fw1\n");
    for (phase, blurb) in [
        (Phase::Baseline, "all switches benign"),
        (Phase::Attack, "aggregation switch mirrors + drops"),
        (Phase::NetCo, "same attacker inside a k=3 combiner"),
    ] {
        let out = run(phase, &profile, 42, 10);
        println!("{phase:?} ({blurb}):");
        println!("  requests sent by vm1 ....... {}", out.requests_sent);
        println!("  requests arriving at fw1 ... {}", out.requests_at_fw1);
        println!("  responses back at vm1 ...... {}", out.responses_at_vm1);
        println!("  stray frames at the core ... {}", out.frames_at_core);
        if phase == Phase::NetCo {
            println!(
                "  mirrored copies suppressed by the compare: {} ({} alarms)",
                out.compare_suppressed, out.single_path_alarms
            );
        }
        println!();
    }
    println!("paper: baseline 10/10/10; attack 20 at fw1 + 0 at vm1; NetCo all 10 cycles restored");
}
