//! Telemetry determinism: the same seed and scenario must render
//! byte-identical metrics snapshots and chrome-trace documents across
//! reruns and across `netco_harness::Pool` worker counts — the
//! `harness_determinism` pattern applied to the telemetry artifacts.
//!
//! Sinks are `Rc`-based and single-world, so each pool job builds its own
//! world and sink inside the worker and ships only the rendered strings
//! back; the fold order of the pool is canonical, so nothing about the
//! worker count may leak into the bytes.

use netco_bench::chaos;
use netco_harness::Pool;

fn rendered_artifacts(_job: &u64) -> (String, String) {
    let a = chaos::artifacts();
    (a.metrics_json, a.trace_json)
}

#[test]
fn telemetry_artifacts_identical_across_reruns_and_thread_counts() {
    let jobs: Vec<u64> = (0..3).collect();
    let reference = Pool::serial().map(&jobs, rendered_artifacts);
    assert!(reference
        .iter()
        .all(|(m, t)| !m.is_empty() && t.contains("traceEvents")));
    // Rerun determinism: every job is the identical scenario.
    assert!(
        reference.windows(2).all(|w| w[0] == w[1]),
        "identical runs must render identical artifacts"
    );
    // Thread-count determinism: pooled workers change nothing.
    for threads in [2, 3] {
        let pooled = Pool::new(threads).map(&jobs, rendered_artifacts);
        assert_eq!(
            pooled, reference,
            "{threads} workers must render byte-identical artifacts"
        );
    }
}
