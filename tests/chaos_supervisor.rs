//! The PR-3 chaos acceptance scenario: replica `r2` flaps three times
//! during a 100-ping Central3 run while the self-healing supervisor is
//! attached. Service must stay at 100/100, the supervisor event log must
//! show the full quarantine → degrade → probation → re-admit → restore
//! cycle, and the whole run must be bit-identical across reruns of the
//! same seed.

use std::fmt::Write as _;

use netco_core::{Compare, EventCounts, SecurityEvent, SupervisorConfig};
use netco_sim::{SimDuration, SimTime};
use netco_topo::{FaultKind, Profile, Scenario, ScenarioKind, H2_IP};
use netco_traffic::{IcmpEchoResponder, PingConfig, PingReport, Pinger};

/// One run's observable outcome: ping report, the compare's full security
/// event log (timestamped), and the per-kind counters.
#[derive(Debug, Clone, PartialEq)]
struct ChaosOutcome {
    report: PingReport,
    log: Vec<(SimTime, SecurityEvent)>,
    counts: EventCounts,
}

fn flapping_scenario() -> Scenario {
    let mut profile = Profile::functional();
    profile.seed = 33;
    // r2 (replica index 1) flaps three times: down during
    // [150, 250), [400, 500) and [650, 750) ms — well inside the
    // 100-ping × 10 ms traffic window.
    Scenario::build(ScenarioKind::Central3, profile, 33)
        .with_miss_alarm_threshold(3)
        .with_supervisor(
            SupervisorConfig::default()
                .with_quarantine_strikes(1)
                .with_probation_delay(SimDuration::from_millis(50))
                .with_readmit_streak(4)
                .with_escalation_cap(2),
        )
        .with_replica_fault(
            1,
            FaultKind::Flaps {
                first_down: SimTime::ZERO + SimDuration::from_millis(150),
                down_for: SimDuration::from_millis(100),
                up_for: SimDuration::from_millis(150),
                cycles: 3,
            },
        )
}

fn run_chaos() -> ChaosOutcome {
    let scenario = flapping_scenario();
    let mut built = scenario.build_world(
        0,
        |nic| {
            Pinger::new(
                nic,
                PingConfig::new(H2_IP)
                    .with_count(100)
                    .with_interval(SimDuration::from_millis(10)),
            )
        },
        IcmpEchoResponder::new,
    );
    built
        .world
        .run_for(SimDuration::from_secs(1) + SimDuration::from_secs(1));
    let report = built.world.device::<Pinger>(built.h1).unwrap().report();
    let compare = built
        .world
        .device::<Compare>(built.compare.unwrap())
        .unwrap();
    ChaosOutcome {
        report,
        log: compare
            .events()
            .iter()
            .map(|e| (e.at, e.record.clone()))
            .collect(),
        counts: compare.stats().events,
    }
}

/// First-occurrence index of a supervisor lifecycle stage on one lane.
fn first(log: &[(SimTime, SecurityEvent)], lane_id: u16, stage: &str) -> Option<usize> {
    log.iter().position(|(_, e)| match (stage, e) {
        ("quarantine", SecurityEvent::ReplicaQuarantined { lane, .. }) => *lane == lane_id,
        ("degrade", SecurityEvent::ModeDegraded { lane, .. }) => *lane == lane_id,
        ("probation", SecurityEvent::ReplicaProbation { lane, .. }) => *lane == lane_id,
        ("readmit", SecurityEvent::ReplicaReadmitted { lane, .. }) => *lane == lane_id,
        ("restore", SecurityEvent::ModeRestored { lane, .. }) => *lane == lane_id,
        _ => false,
    })
}

#[test]
fn flapping_replica_heals_without_losing_a_single_ping() {
    let out = run_chaos();

    // Availability: the flapping replica never costs a ping.
    assert_eq!(out.report.transmitted, 100);
    assert_eq!(out.report.received, 100, "chaos must not cost availability");

    // The supervisor healed every episode on both lanes (one per guard).
    assert_eq!(
        out.counts.quarantines, 6,
        "three flaps must quarantine on both lanes: {:?}",
        out.counts
    );
    assert_eq!(
        out.counts.quarantines, out.counts.readmissions,
        "every quarantine must heal: {:?}",
        out.counts
    );
    assert_eq!(out.counts.degradations, out.counts.restorations);
    assert!(out.counts.probations >= 1);

    // Full lifecycle, in causal order, on each lane that quarantined.
    for lane in [0u16, 1] {
        let order: Vec<usize> = ["quarantine", "degrade", "probation", "readmit", "restore"]
            .into_iter()
            .map(|s| {
                first(&out.log, lane, s).unwrap_or_else(|| panic!("lane {lane}: missing {s} event"))
            })
            .collect();
        assert!(
            order.windows(2).all(|w| w[0] < w[1]),
            "lane {lane}: lifecycle out of order: {order:?}"
        );
    }

    // The quarantined replica is always r2 (guard replica port 2).
    assert!(out.log.iter().all(|(_, e)| match e {
        SecurityEvent::ReplicaQuarantined { port, .. } => *port == 2,
        _ => true,
    }));

    // Persist the supervisor event log for the CI chaos job's artifact.
    let mut rendered = String::new();
    for (at, event) in &out.log {
        let _ = writeln!(rendered, "{:>12} ns  {event}", at.as_nanos());
    }
    let dir = std::path::Path::new("target/chaos");
    std::fs::create_dir_all(dir).expect("create target/chaos");
    std::fs::write(dir.join("supervisor_events.log"), rendered)
        .expect("write supervisor event log");
}

#[test]
fn chaos_run_is_bit_identical_across_reruns() {
    let a = run_chaos();
    let b = run_chaos();
    assert_eq!(a, b, "same seed must reproduce the identical run");
    assert!(!a.log.is_empty());
}
