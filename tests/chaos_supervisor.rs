//! The PR-3 chaos acceptance scenario: replica `r2` flaps three times
//! during a 100-ping Central3 run while the self-healing supervisor is
//! attached. Service must stay at 100/100, the supervisor event log must
//! show the full quarantine → degrade → probation → re-admit → restore
//! cycle, and the whole run must be bit-identical across reruns of the
//! same seed.

use std::fmt::Write as _;

use netco_bench::chaos;
use netco_core::{Compare, EventCounts, SecurityEvent};
use netco_fastpath::accelerate;
use netco_net::{DeviceStore, GenericWorld, NodeId};
use netco_sim::{SimDuration, SimTime};
use netco_traffic::{IcmpEchoResponder, PingConfig, PingReport, Pinger};

/// One run's observable outcome: ping report, the compare's full security
/// event log (timestamped), and the per-kind counters.
#[derive(Debug, Clone, PartialEq)]
struct ChaosOutcome {
    report: PingReport,
    log: Vec<(SimTime, SecurityEvent)>,
    counts: EventCounts,
}

/// Runs the canonical chaos scenario (`netco_bench::chaos`), optionally
/// with a telemetry sink installed, and extracts the observable outcome
/// plus the rendered telemetry artifacts when the sink was on.
fn run_chaos_with(telemetry: bool) -> (ChaosOutcome, Option<(String, String)>) {
    let built = chaos::run(telemetry);
    let outcome = outcome_of(&built.world, built.h1, built.compare.unwrap());
    let artifacts = telemetry.then(|| {
        let sink = built.world.telemetry();
        (sink.metrics_json(), sink.trace_json())
    });
    (outcome, artifacts)
}

/// Extracts the observable outcome from a finished chaos world under any
/// device storage (dyn oracle or `DeviceKind` enum dispatch).
fn outcome_of<D: DeviceStore>(world: &GenericWorld<D>, h1: NodeId, cmp: NodeId) -> ChaosOutcome {
    let report = world.device::<Pinger>(h1).unwrap().report();
    let compare = world.device::<Compare>(cmp).unwrap();
    ChaosOutcome {
        report,
        log: compare
            .events()
            .iter()
            .map(|e| (e.at, e.record.clone()))
            .collect(),
        counts: compare.stats().events,
    }
}

fn run_chaos() -> ChaosOutcome {
    run_chaos_with(false).0
}

/// First-occurrence index of a supervisor lifecycle stage on one lane.
fn first(log: &[(SimTime, SecurityEvent)], lane_id: u16, stage: &str) -> Option<usize> {
    log.iter().position(|(_, e)| match (stage, e) {
        ("quarantine", SecurityEvent::ReplicaQuarantined { lane, .. }) => *lane == lane_id,
        ("degrade", SecurityEvent::ModeDegraded { lane, .. }) => *lane == lane_id,
        ("probation", SecurityEvent::ReplicaProbation { lane, .. }) => *lane == lane_id,
        ("readmit", SecurityEvent::ReplicaReadmitted { lane, .. }) => *lane == lane_id,
        ("restore", SecurityEvent::ModeRestored { lane, .. }) => *lane == lane_id,
        _ => false,
    })
}

#[test]
fn flapping_replica_heals_without_losing_a_single_ping() {
    let out = run_chaos();

    // Availability: the flapping replica never costs a ping.
    assert_eq!(out.report.transmitted, 100);
    assert_eq!(out.report.received, 100, "chaos must not cost availability");

    // The supervisor healed every episode on both lanes (one per guard).
    assert_eq!(
        out.counts.quarantines, 6,
        "three flaps must quarantine on both lanes: {:?}",
        out.counts
    );
    assert_eq!(
        out.counts.quarantines, out.counts.readmissions,
        "every quarantine must heal: {:?}",
        out.counts
    );
    assert_eq!(out.counts.degradations, out.counts.restorations);
    assert!(out.counts.probations >= 1);

    // Full lifecycle, in causal order, on each lane that quarantined.
    for lane in [0u16, 1] {
        let order: Vec<usize> = ["quarantine", "degrade", "probation", "readmit", "restore"]
            .into_iter()
            .map(|s| {
                first(&out.log, lane, s).unwrap_or_else(|| panic!("lane {lane}: missing {s} event"))
            })
            .collect();
        assert!(
            order.windows(2).all(|w| w[0] < w[1]),
            "lane {lane}: lifecycle out of order: {order:?}"
        );
    }

    // The quarantined replica is always r2 (guard replica port 2).
    assert!(out.log.iter().all(|(_, e)| match e {
        SecurityEvent::ReplicaQuarantined { port, .. } => *port == 2,
        _ => true,
    }));

    // Persist the supervisor event log for the CI chaos job's artifact.
    let mut rendered = String::new();
    for (at, event) in &out.log {
        let _ = writeln!(rendered, "{:>12} ns  {event}", at.as_nanos());
    }
    let dir = std::path::Path::new("target/chaos");
    std::fs::create_dir_all(dir).expect("create target/chaos");
    std::fs::write(dir.join("supervisor_events.log"), rendered)
        .expect("write supervisor event log");
}

#[test]
fn chaos_run_is_bit_identical_across_reruns() {
    let a = run_chaos();
    let b = run_chaos();
    assert_eq!(a, b, "same seed must reproduce the identical run");
    assert!(!a.log.is_empty());
}

/// PR-10 differential: the same chaos world run under enum dispatch
/// (`DeviceKind` storage + CPU bypass) must produce the identical outcome
/// as the dyn oracle with the bypass forced off — the fault-injection,
/// supervisor and compare machinery all ride the fast path unchanged.
#[test]
fn chaos_run_is_bit_identical_under_enum_dispatch() {
    let build = || {
        chaos::flapping_scenario().build_world(
            0,
            |nic| {
                Pinger::new(
                    nic,
                    PingConfig::new(netco_topo::H2_IP)
                        .with_count(100)
                        .with_interval(SimDuration::from_millis(10)),
                )
            },
            IcmpEchoResponder::new,
        )
    };
    let mut seq = build();
    seq.world.set_cpu_bypass(false);
    seq.world.run_for(SimDuration::from_secs(2));
    let oracle = outcome_of(&seq.world, seq.h1, seq.compare.unwrap());
    assert_eq!(oracle.report.received, 100);

    let built = build();
    let (h1, cmp) = (built.h1, built.compare.unwrap());
    let mut fast = accelerate(built.world);
    fast.run_for(SimDuration::from_secs(2));
    assert_eq!(
        outcome_of(&fast, h1, cmp),
        oracle,
        "enum dispatch diverged from the dyn oracle"
    );
    assert_eq!(oracle, run_chaos(), "chaos::run drifted from the oracle");
}

/// The telemetry acceptance criteria in one run: installing the sink must
/// not perturb the simulation, both rendered artifacts must be
/// byte-identical across reruns, the chrome trace must show every
/// quarantine episode as a begin/end span pair with probation markers in
/// between, and the per-stage packet-lifecycle histograms must have data.
/// The artifacts are persisted under `target/chaos/` for the CI job.
#[test]
fn telemetry_artifacts_deterministic_and_structurally_valid() {
    let plain = run_chaos();
    let (out_a, art_a) = run_chaos_with(true);
    let (out_b, art_b) = run_chaos_with(true);
    let (metrics_a, trace_a) = art_a.unwrap();
    let (metrics_b, trace_b) = art_b.unwrap();

    assert_eq!(out_a, plain, "telemetry must not perturb the simulation");
    assert_eq!(out_a, out_b);
    assert_eq!(
        metrics_a, metrics_b,
        "metrics snapshot must be byte-identical"
    );
    assert_eq!(trace_a, trace_b, "chrome trace must be byte-identical");

    // Every quarantine episode (3 flaps × 2 lanes) is a span pair on the
    // compare's lane tracks, with the probation gate marked in between.
    let spans = |ph: &str, name: &str| {
        trace_a
            .lines()
            .filter(|l| l.contains(&format!("\"ph\": \"{ph}\"")) && l.contains(name))
            .count()
    };
    assert_eq!(spans("B", "quarantine port 2"), 6, "quarantine span opens");
    assert_eq!(spans("E", "quarantine port 2"), 6, "quarantine span closes");
    assert!(spans("i", "probation port 2") >= 1, "probation markers");
    assert_eq!(spans("B", "degraded"), spans("E", "degraded"));
    assert!(trace_a.contains("\"name\": \"process_name\""));
    assert!(trace_a.trim_end().ends_with("\"displayTimeUnit\": \"ms\"}"));

    // Per-stage latency histograms saw real traffic (hub → replica →
    // compare → verdict), and drops carry their reason.
    for name in [
        "lifecycle.hub_to_replica_ns",
        "lifecycle.replica_to_compare_ns",
        "lifecycle.compare_to_verdict_ns",
        "lifecycle.end_to_end_ns",
    ] {
        let line = metrics_a
            .lines()
            .find(|l| l.contains(name))
            .unwrap_or_else(|| panic!("metrics snapshot is missing {name}"));
        assert!(
            !line.contains("\"count\": 0"),
            "{name} must have samples: {line}"
        );
    }
    assert!(metrics_a.contains("\"lifecycle.released\""));
    assert!(
        metrics_a.contains("\"compare.cmp.received\"") || {
            // The compare node's name is topology-defined; fall back to any
            // scoped compare counter so a rename fails loudly here.
            metrics_a.contains("compare.") && metrics_a.contains(".received")
        }
    );
    assert!(metrics_a.contains("\"sim.events_processed\""));

    let dir = std::path::Path::new("target/chaos");
    std::fs::create_dir_all(dir).expect("create target/chaos");
    std::fs::write(dir.join("chaos_metrics.json"), &metrics_a).expect("write metrics artifact");
    std::fs::write(dir.join("chaos_trace.json"), &trace_a).expect("write trace artifact");
}
