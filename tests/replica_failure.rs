//! Availability under replica failure (paper §IV case 3): a replica's
//! links go down mid-run; the combiner keeps delivering, the compare
//! raises a replica-down alarm, and recovery is detected when the links
//! come back.
//!
//! Faults are scripted with a declarative [`FaultKind`] attached to the
//! scenario (applied to both of the replica's links), not hand-rolled
//! `set_link_enabled` timelines.

use netco_core::{Compare, SecurityEvent};
use netco_sim::{ActivationWindow, SimDuration, SimTime};
use netco_topo::{FaultKind, Profile, Scenario, ScenarioKind, H2_IP};
use netco_traffic::{IcmpEchoResponder, PingConfig, Pinger, UdpConfig, UdpSink, UdpSource};

fn at_ms(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

#[test]
fn replica_crash_does_not_interrupt_service() {
    let mut profile = Profile::functional();
    profile.seed = 3;
    // Crash replica r2 (both links down) after 30 ping cycles, forever.
    let scenario = Scenario::build(ScenarioKind::Central3, profile, 3).with_replica_fault(
        1,
        FaultKind::Outage(ActivationWindow::starting_at(at_ms(300))),
    );
    let mut built = scenario.build_world(
        0,
        |nic| {
            Pinger::new(
                nic,
                PingConfig::new(H2_IP)
                    .with_count(100)
                    .with_interval(SimDuration::from_millis(10)),
            )
        },
        IcmpEchoResponder::new,
    );
    built
        .world
        .run_for(SimDuration::from_millis(300) + SimDuration::from_secs(2));
    let report = built.world.device::<Pinger>(built.h1).unwrap().report();
    assert_eq!(report.transmitted, 100);
    assert_eq!(report.received, 100, "2-of-3 majority must mask the crash");
}

#[test]
fn compare_raises_down_alarm_and_recovery() {
    // Sustained traffic so the consecutive-miss counter can trip. Replica
    // r3 crashes at 500 ms and recovers at 2 s — one bounded outage window.
    let mut profile = Profile::functional();
    profile.seed = 4;
    let scenario = Scenario::build(ScenarioKind::Central3, profile, 4).with_replica_fault(
        2,
        FaultKind::Outage(ActivationWindow::between(at_ms(500), at_ms(2000))),
    );
    let mut built = scenario.build_world(
        0,
        |nic| {
            UdpSource::new(
                nic,
                UdpConfig::new(H2_IP)
                    .with_rate(20_000_000)
                    .with_payload_len(512)
                    .with_duration(SimDuration::from_secs(4)),
            )
        },
        |nic| UdpSink::new(nic, 5001),
    );
    built.world.run_for(SimDuration::from_millis(2000));
    {
        let compare = built
            .world
            .device::<Compare>(built.compare.unwrap())
            .unwrap();
        assert!(
            compare
                .events()
                .iter()
                .any(|e| matches!(e.record, SecurityEvent::ReplicaSuspectedDown { .. })),
            "a silent replica must raise an operator alarm"
        );
        // No traffic was lost end to end.
        let sink_loss = built
            .world
            .device::<UdpSink>(built.h2)
            .unwrap()
            .report()
            .loss_fraction;
        assert!(sink_loss < 0.001, "loss {sink_loss}");
    }
    // The outage window ends at 2 s; the compare must notice the recovery.
    built.world.run_for(SimDuration::from_secs(2));
    let compare = built
        .world
        .device::<Compare>(built.compare.unwrap())
        .unwrap();
    assert!(
        compare
            .events()
            .iter()
            .any(|e| matches!(e.record, SecurityEvent::ReplicaRecovered { .. })),
        "recovery must be reported"
    );
}

#[test]
fn detection_mode_survives_replica_crash_too() {
    // k = 2 detection: the first copy is forwarded immediately, so losing
    // one replica costs nothing but alarms.
    let mut profile = Profile::functional();
    profile.seed = 5;
    let scenario = Scenario::build(ScenarioKind::Detect2, profile, 5).with_replica_fault(
        0,
        FaultKind::Outage(ActivationWindow::starting_at(at_ms(100))),
    );
    let mut built = scenario.build_world(
        0,
        |nic| {
            Pinger::new(
                nic,
                PingConfig::new(H2_IP)
                    .with_count(50)
                    .with_interval(SimDuration::from_millis(10)),
            )
        },
        IcmpEchoResponder::new,
    );
    built
        .world
        .run_for(SimDuration::from_millis(100) + SimDuration::from_secs(2));
    let report = built.world.device::<Pinger>(built.h1).unwrap().report();
    assert_eq!(report.received, 50);
    let compare = built
        .world
        .device::<Compare>(built.compare.unwrap())
        .unwrap();
    assert!(compare
        .events()
        .iter()
        .any(|e| matches!(e.record, SecurityEvent::DetectionMismatch { .. })));
}
