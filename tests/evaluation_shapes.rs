//! Cross-crate sanity checks that the evaluation's qualitative shapes
//! hold at miniature scale (the full-size reproduction lives in the bench
//! targets; see EXPERIMENTS.md).

use netco_core::Compare;
use netco_sim::SimDuration;
use netco_topo::{Direction, Profile, Scenario, ScenarioKind};
use netco_traffic::PingConfig;

fn scenario(kind: ScenarioKind) -> Scenario {
    Scenario::build(kind, Profile::default(), 1234)
}

fn avg_rtt_us(kind: ScenarioKind) -> f64 {
    let report = scenario(kind).run_ping(
        PingConfig::default()
            .with_count(30)
            .with_interval(SimDuration::from_millis(5)),
    );
    assert_eq!(report.received, 30, "{kind}: all pings must complete");
    report.avg.expect("rtt").as_nanos() as f64 / 1e3
}

#[test]
fn rtt_ordering_matches_fig7() {
    // Paper Fig. 7 / Table I: Linespeed ≤ Dup3 ≤ Dup5 and every combiner
    // variant sits below its Central counterpart; POX3 towers above all.
    let linespeed = avg_rtt_us(ScenarioKind::Linespeed);
    let dup3 = avg_rtt_us(ScenarioKind::Dup3);
    let central3 = avg_rtt_us(ScenarioKind::Central3);
    let central5 = avg_rtt_us(ScenarioKind::Central5);
    let pox3 = avg_rtt_us(ScenarioKind::Pox3);
    assert!(
        linespeed < central3,
        "linespeed {linespeed} vs central3 {central3}"
    );
    assert!(dup3 < central3, "dup3 {dup3} vs central3 {central3}");
    assert!(
        central3 < central5,
        "central3 {central3} vs central5 {central5}"
    );
    assert!(
        pox3 > 3.0 * central3,
        "POX ({pox3}) must be far above Central3 ({central3})"
    );
}

#[test]
fn udp_duplicates_only_in_dup_scenarios() {
    for (kind, expect_dups) in [
        (ScenarioKind::Linespeed, false),
        (ScenarioKind::Dup3, true),
        (ScenarioKind::Central3, false),
    ] {
        let out = scenario(kind).run_udp(
            Direction::H1ToH2,
            20_000_000,
            1470,
            SimDuration::from_millis(300),
            0,
        );
        assert!(out.report.received > 0, "{kind}");
        assert_eq!(
            out.report.duplicates > 0,
            expect_dups,
            "{kind}: duplicates={}",
            out.report.duplicates
        );
    }
}

#[test]
fn tcp_combining_beats_duplication() {
    // The paper's headline TCP observation (§V.B): "removing the duplicate
    // packets (by combining) increases the throughput visibly".
    let dup =
        scenario(ScenarioKind::Dup3).run_tcp(Direction::H1ToH2, SimDuration::from_millis(800), 0);
    let central = scenario(ScenarioKind::Central3).run_tcp(
        Direction::H1ToH2,
        SimDuration::from_millis(800),
        0,
    );
    assert!(
        central.mbps > dup.mbps,
        "Central3 ({:.0}) must beat Dup3 ({:.0}) for TCP",
        central.mbps,
        dup.mbps
    );
}

#[test]
fn udp_duplication_beats_combining_slightly() {
    // ...while for UDP the compare's extra stage costs a little (Fig. 5:
    // Dup3 266 vs Central3 245).
    let s_dup = scenario(ScenarioKind::Dup3);
    let s_central = scenario(ScenarioKind::Central3);
    let iperf = netco_traffic::IperfConfig {
        min_rate_bps: 10_000_000,
        max_rate_bps: 600_000_000,
        loss_threshold: 0.005,
        resolution_bps: 20_000_000,
    };
    let trial = SimDuration::from_millis(400);
    let (_, dup) = s_dup
        .run_udp_max_rate(Direction::H1ToH2, &iperf, 1470, trial, trial)
        .expect("dup3 sustains some rate");
    let (_, central) = s_central
        .run_udp_max_rate(Direction::H1ToH2, &iperf, 1470, trial, trial)
        .expect("central3 sustains some rate");
    assert!(
        dup.goodput_bps >= central.goodput_bps * 0.9,
        "Dup3 UDP ({:.0}) should not trail Central3 ({:.0}) by much",
        dup.goodput_bps / 1e6,
        central.goodput_bps / 1e6
    );
}

#[test]
fn both_directions_behave_symmetrically() {
    let s = scenario(ScenarioKind::Central3);
    let fwd = s.run_udp(
        Direction::H1ToH2,
        50_000_000,
        1470,
        SimDuration::from_millis(300),
        0,
    );
    let rev = s.run_udp(
        Direction::H2ToH1,
        50_000_000,
        1470,
        SimDuration::from_millis(300),
        0,
    );
    assert!(fwd.report.received > 0 && rev.report.received > 0);
    let ratio = fwd.report.goodput_bps / rev.report.goodput_bps;
    assert!((0.8..1.25).contains(&ratio), "direction asymmetry {ratio}");
}

#[test]
fn compare_cache_stays_bounded_under_load() {
    // DoS-resistance of the compare itself: a sustained high-rate flow
    // must never grow the cache beyond its configured capacity.
    let s = scenario(ScenarioKind::Central3);
    let mut built = s.build_world(
        7,
        |nic| {
            netco_traffic::UdpSource::new(
                nic,
                netco_traffic::UdpConfig::new(netco_topo::H2_IP)
                    .with_rate(200_000_000)
                    .with_payload_len(64)
                    .with_duration(SimDuration::from_millis(500)),
            )
        },
        |nic| netco_traffic::UdpSink::new(nic, 5001),
    );
    built.world.run_for(SimDuration::from_secs(1));
    let compare = built
        .world
        .device::<Compare>(built.compare.unwrap())
        .unwrap();
    let cap = s.profile().compare_cache_entries;
    for lane in [0u16, 1] {
        assert!(
            compare.core().cache_len(lane) <= cap,
            "lane {lane} cache exceeded capacity"
        );
    }
}
