//! The PR-8 control-plane chaos acceptance scenario: POX3 with a 3-way
//! replicated controller behind per-guard `ControlVoter`s, where
//! controller `pox1` equivocates (corrupts every flow-mod / packet-out it
//! emits) for half a second mid-run. The 2-of-3 honest majority must keep
//! all 100 pings alive, both voters must march the liar through the full
//! quarantine → degrade → probation → re-admit → restore lifecycle once
//! its window closes, the run must be bit-identical across reruns and
//! across the sequential / region-parallel executors, and voting must
//! stay strictly opt-in (a default Pox3 build has no voters).

use std::fmt::Write as _;

use netco_bench::control_chaos::{self, LIAR};
use netco_core::{ControlVoter, ControlVoterStats, SecurityEvent};
use netco_fastpath::accelerate;
use netco_harness::Pool;
use netco_net::{DeviceStore, GenericWorld, NodeId};
use netco_sim::{SimDuration, SimTime};
use netco_topo::{
    BuiltScenario, ControlReplication, FaultKind, Profile, Scenario, ScenarioKind, H2_IP,
};
use netco_traffic::{IcmpEchoResponder, PingConfig, PingReport, Pinger};

/// One voter's observable outcome.
#[derive(Debug, Clone, PartialEq)]
struct VoterView {
    stats: ControlVoterStats,
    log: Vec<(SimTime, SecurityEvent)>,
    quarantined: Vec<usize>,
}

/// One run's full observable outcome.
#[derive(Debug, Clone, PartialEq)]
struct ChaosOutcome {
    report: PingReport,
    voters: Vec<VoterView>,
}

fn outcome(built: &BuiltScenario) -> ChaosOutcome {
    outcome_of(&built.world, built.h1, &built.voters)
}

/// Extracts the observable outcome from any finished world — the dyn
/// oracle or a `DeviceKind` enum-dispatch world.
fn outcome_of<D: DeviceStore>(
    world: &GenericWorld<D>,
    h1: NodeId,
    voter_ids: &[NodeId],
) -> ChaosOutcome {
    let report = world.device::<Pinger>(h1).unwrap().report();
    let voters = voter_ids
        .iter()
        .map(|&v| {
            let voter = world.device::<ControlVoter>(v).unwrap();
            VoterView {
                stats: voter.stats(),
                log: voter
                    .events()
                    .iter()
                    .map(|e| (e.at, e.record.clone()))
                    .collect(),
                quarantined: voter.quarantined_controllers(),
            }
        })
        .collect();
    ChaosOutcome { report, voters }
}

fn run_chaos() -> ChaosOutcome {
    outcome(&control_chaos::run(false))
}

/// First-occurrence index of a supervisor lifecycle stage for one
/// controller (vote-lane replica port = controller index + 1).
fn first(log: &[(SimTime, SecurityEvent)], ctl_port: u16, stage: &str) -> Option<usize> {
    log.iter().position(|(_, e)| match (stage, e) {
        ("quarantine", SecurityEvent::ReplicaQuarantined { port, .. }) => *port == ctl_port,
        ("degrade", SecurityEvent::ModeDegraded { .. }) => true,
        ("probation", SecurityEvent::ReplicaProbation { port, .. }) => *port == ctl_port,
        ("readmit", SecurityEvent::ReplicaReadmitted { port, .. }) => *port == ctl_port,
        ("restore", SecurityEvent::ModeRestored { .. }) => true,
        _ => false,
    })
}

#[test]
fn equivocating_controller_never_costs_a_ping() {
    let out = run_chaos();

    // Availability: one lying controller out of three costs nothing.
    assert_eq!(out.report.transmitted, 100);
    assert_eq!(
        out.report.received, 100,
        "a 1-of-3 Byzantine controller must not cost availability"
    );

    let liar_port = LIAR as u16 + 1;
    assert_eq!(out.voters.len(), 2, "one voter per guard");
    for (i, voter) in out.voters.iter().enumerate() {
        // The voter did real work: releases, rejections, relays.
        assert!(voter.stats.voted > 0, "voter {i} released nothing");
        assert!(
            voter.stats.rejected > 0,
            "voter {i} never saw the liar lose a vote: {:?}",
            voter.stats
        );
        assert!(voter.stats.relayed > 0, "voter {i} relayed no packet-ins");
        assert_eq!(voter.stats.invalid, 0, "equivocation is well-formed OF");

        // Disagreements pin the liar — and only the liar.
        assert!(
            voter.stats.disagreements[LIAR] > 0,
            "voter {i} must count the liar's disagreements: {:?}",
            voter.stats
        );
        for (c, &d) in voter.stats.disagreements.iter().enumerate() {
            if c != LIAR {
                assert_eq!(d, 0, "voter {i}: honest controller {c} blamed");
            }
        }

        // Full self-healing lifecycle, in causal order.
        let order: Vec<usize> = ["quarantine", "degrade", "probation", "readmit", "restore"]
            .into_iter()
            .map(|s| {
                first(&voter.log, liar_port, s)
                    .unwrap_or_else(|| panic!("voter {i}: missing {s} event"))
            })
            .collect();
        assert!(
            order.windows(2).all(|w| w[0] < w[1]),
            "voter {i}: lifecycle out of order: {order:?}"
        );

        // Only the liar was ever quarantined, and it healed by the end.
        assert!(voter.log.iter().all(|(_, e)| match e {
            SecurityEvent::ReplicaQuarantined { port, .. } => *port == liar_port,
            _ => true,
        }));
        assert!(
            voter.quarantined.is_empty(),
            "voter {i}: liar must be re-admitted by the end: {:?}",
            voter.quarantined
        );
    }

    // Persist the vote/quarantine event log for the CI job's artifact.
    let mut rendered = String::new();
    for (i, voter) in out.voters.iter().enumerate() {
        for (at, event) in &voter.log {
            let _ = writeln!(rendered, "voter{i} {:>12} ns  {event}", at.as_nanos());
        }
    }
    let dir = std::path::Path::new("target/chaos");
    std::fs::create_dir_all(dir).expect("create target/chaos");
    std::fs::write(dir.join("vote_events.log"), rendered).expect("write vote event log");
}

/// PR-9 voter-memory satellite: the fingerprint vote (default — 16-byte
/// fingerprints through the compare core, one retained full copy
/// first-seen per key) against the pre-PR-9 full-copy baseline on the
/// identical chaos world. Every artifact each voter releases to its guard
/// must be byte-identical at the identical time (witnessed by the
/// order-sensitive `release_digest` over `(time, bytes)`), the ping train
/// and security-event logs must match, and only the memory profile may
/// differ: the fingerprint voter retains full bytes itself, the baseline
/// leaves them in the compare cache.
#[test]
fn fingerprint_vote_releases_byte_identical_artifacts_as_full_copy_baseline() {
    let run_with = |voter_cfg: netco_core::ControlVoterConfig| {
        let mut built = control_chaos::equivocating_scenario_with(voter_cfg).build_world(
            0,
            |nic| {
                Pinger::new(
                    nic,
                    PingConfig::new(H2_IP)
                        .with_count(100)
                        .with_interval(SimDuration::from_millis(10)),
                )
            },
            IcmpEchoResponder::new,
        );
        built.world.run_for(SimDuration::from_secs(2));
        outcome(&built)
    };
    let fingerprint = run_with(control_chaos::voter_config());
    let baseline = run_with(control_chaos::voter_config().with_full_copy_votes());

    assert_eq!(fingerprint.report, baseline.report);
    assert_eq!(fingerprint.voters.len(), baseline.voters.len());
    for (i, (fp, full)) in fingerprint.voters.iter().zip(&baseline.voters).enumerate() {
        assert_eq!(
            fp.stats.release_digest, full.stats.release_digest,
            "voter {i}: released artifacts diverged from the full-copy baseline"
        );
        assert!(fp.stats.voted > 0, "voter {i} released nothing");
        assert_eq!(fp.log, full.log, "voter {i}: security events diverged");
        assert_eq!(fp.quarantined, full.quarantined);
        assert_eq!(
            (
                fp.stats.sent,
                fp.stats.voted,
                fp.stats.rejected,
                &fp.stats.disagreements
            ),
            (
                full.stats.sent,
                full.stats.voted,
                full.stats.rejected,
                &full.stats.disagreements
            ),
            "voter {i}: semantic counters diverged"
        );
        assert!(
            fp.stats.retained_bytes_peak > 0,
            "voter {i}: fingerprint vote must retain its one full copy"
        );
        assert_eq!(
            full.stats.retained_bytes_peak, 0,
            "voter {i}: the baseline keeps full copies in the compare cache"
        );
    }
}

#[test]
fn byzantine_chaos_is_bit_identical_across_reruns() {
    let a = run_chaos();
    let b = run_chaos();
    assert_eq!(a, b, "same seed must reproduce the identical run");
    assert!(!a.voters[0].log.is_empty());
}

/// PR-10 differential: the byzantine world — replicated controllers,
/// per-guard voters, an equivocating liar — run under enum dispatch
/// (`DeviceKind` storage + CPU bypass) must match the dyn oracle with the
/// bypass forced off, bit for bit.
#[test]
fn byzantine_chaos_is_identical_under_enum_dispatch() {
    let build = || {
        control_chaos::equivocating_scenario().build_world(
            0,
            |nic| {
                Pinger::new(
                    nic,
                    PingConfig::new(H2_IP)
                        .with_count(100)
                        .with_interval(SimDuration::from_millis(10)),
                )
            },
            IcmpEchoResponder::new,
        )
    };
    let mut seq = build();
    seq.world.set_cpu_bypass(false);
    seq.world.run_for(SimDuration::from_secs(2));
    let oracle = outcome(&seq);
    assert_eq!(oracle.report.received, 100);
    assert!(!oracle.voters[0].log.is_empty());

    let built = build();
    let (h1, voter_ids) = (built.h1, built.voters.clone());
    let mut fast = accelerate(built.world);
    fast.run_for(SimDuration::from_secs(2));
    assert_eq!(
        outcome_of(&fast, h1, &voter_ids),
        oracle,
        "enum dispatch diverged from the dyn oracle"
    );
}

/// Sequential vs region-parallel executor on the byzantine world: the
/// observable outcome must be bit-identical at every worker count
/// (`NETCO_THREADS` as a comma list, the CI axis, default 1/2).
#[test]
fn byzantine_chaos_is_identical_under_region_parallel_execution() {
    let deadline = SimTime::ZERO + SimDuration::from_secs(2);
    let build = || {
        control_chaos::equivocating_scenario().build_world(
            0,
            |nic| {
                Pinger::new(
                    nic,
                    PingConfig::new(H2_IP)
                        .with_count(100)
                        .with_interval(SimDuration::from_millis(10)),
                )
            },
            IcmpEchoResponder::new,
        )
    };
    let mut sequential = build();
    sequential.world.run_until(deadline);
    let oracle = outcome(&sequential);
    assert_eq!(oracle.report.received, 100);

    let threads: Vec<usize> = std::env::var(netco_harness::THREADS_ENV)
        .ok()
        .map(|list| {
            list.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2]);
    for t in threads {
        for regions in [2, 4] {
            let mut parallel = build();
            parallel
                .world
                .run_until_parallel(deadline, &Pool::new(t), regions);
            assert_eq!(
                outcome(&parallel),
                oracle,
                "{t} workers / {regions} regions diverged from the sequential oracle"
            );
        }
    }
}

/// Control voting is opt-in: a default Pox3 build carries exactly the
/// pre-replication topology (one controller, no voters) and still serves
/// every ping — the guarantee that the feature off-state is the old code
/// path.
#[test]
fn voting_disabled_by_default_keeps_the_single_controller_topology() {
    let scenario = Scenario::build(ScenarioKind::Pox3, Profile::functional(), 41);
    let mut built = scenario.build_world(
        0,
        |nic| {
            Pinger::new(
                nic,
                PingConfig::new(H2_IP)
                    .with_count(20)
                    .with_interval(SimDuration::from_millis(10)),
            )
        },
        IcmpEchoResponder::new,
    );
    assert!(built.voters.is_empty(), "no voters unless opted in");
    assert_eq!(built.controllers.len(), 1, "single controller by default");
    assert_eq!(built.controller, Some(built.controllers[0]));
    built.world.run_for(SimDuration::from_secs(1));
    let report = built.world.device::<Pinger>(built.h1).unwrap().report();
    assert_eq!(report.received, 20);
}

/// A rolling restart of all three controllers (staggered so at most one
/// is partitioned from the voters at a time) must not cost a ping: the
/// remaining 2-of-3 majority keeps voting.
#[test]
fn rolling_controller_restart_keeps_service_up() {
    let mut profile = Profile::functional();
    profile.seed = 43;
    let scenario = Scenario::build(ScenarioKind::Pox3, profile, 43).with_control_replication(
        ControlReplication::new(3).rolling_restart(
            SimTime::ZERO + SimDuration::from_millis(100),
            SimDuration::from_millis(150),
            SimDuration::from_millis(300),
        ),
    );
    let report = scenario.run_ping(
        PingConfig::default()
            .with_count(100)
            .with_interval(SimDuration::from_millis(10)),
    );
    assert_eq!(report.transmitted, 100);
    assert_eq!(
        report.received, 100,
        "staggered controller restarts must be invisible to the data plane"
    );
}

/// A congested control channel to one controller (2 ms of added one-way
/// latency, comfortably past the 20 ms vote hold time when round-trips
/// stack) must neither stall the vote nor cost a ping — the two prompt
/// controllers form the majority.
#[test]
fn delayed_control_channel_does_not_stall_the_vote() {
    let mut profile = Profile::functional();
    profile.seed = 44;
    let scenario = Scenario::build(ScenarioKind::Pox3, profile, 44).with_control_replication(
        ControlReplication::new(3).with_controller_fault(
            2,
            FaultKind::Delay {
                extra: SimDuration::from_millis(2),
                window: netco_sim::ActivationWindow::always(),
            },
        ),
    );
    let report = scenario.run_ping(
        PingConfig::default()
            .with_count(50)
            .with_interval(SimDuration::from_millis(10)),
    );
    assert_eq!(report.received, 50);
}

/// The telemetry path: a sink installed on the chaos run must not perturb
/// the simulation, the metrics snapshot must carry the voter's `ctlvote.*`
/// cells with real data, and the snapshot must be byte-identical across
/// reruns. The artifact is persisted under `target/chaos/` for CI.
#[test]
fn controller_metrics_are_deterministic_and_surface_the_vote() {
    let plain = run_chaos();
    let built_a = control_chaos::run(true);
    let built_b = control_chaos::run(true);
    let metrics_a = built_a.world.telemetry().metrics_json();
    let metrics_b = built_b.world.telemetry().metrics_json();

    assert_eq!(
        outcome(&built_a),
        plain,
        "telemetry must not perturb the simulation"
    );
    assert_eq!(
        metrics_a, metrics_b,
        "controller metrics must be byte-identical across reruns"
    );

    for metric in ["sent", "voted", "rejected", "relayed"] {
        let needle = format!(".{metric}\"");
        let line = metrics_a
            .lines()
            .find(|l| l.contains("ctlvote.") && l.contains(&needle))
            .unwrap_or_else(|| panic!("metrics snapshot is missing ctlvote *.{metric}"));
        assert!(
            !line.contains(": 0,") && !line.contains(": 0}"),
            "ctlvote {metric} must be non-zero: {line}"
        );
    }
    assert!(
        metrics_a.contains("vote_latency_ns"),
        "vote latency histogram must be registered"
    );
    assert!(
        metrics_a.contains(&format!("disagreements.c{LIAR}")),
        "per-controller disagreement counters must be registered"
    );

    let dir = std::path::Path::new("target/chaos");
    std::fs::create_dir_all(dir).expect("create target/chaos");
    std::fs::write(dir.join("controller_metrics.json"), &metrics_a)
        .expect("write controller metrics artifact");
}
