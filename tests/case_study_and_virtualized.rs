//! End-to-end reproduction of the paper's §VI case study and §VII
//! virtualized NetCo through the public API.

use netco_adversary::{ActivationWindow, Behavior};
use netco_openflow::FlowMatch;
use netco_topo::case_study::{self, Phase};
use netco_topo::virtual_netco::{self, VirtualNetcoConfig};
use netco_topo::Profile;

#[test]
fn case_study_phase1_baseline() {
    let out = case_study::run(Phase::Baseline, &Profile::default(), 42, 10);
    assert_eq!(out.requests_sent, 10);
    assert_eq!(out.requests_at_fw1, 10);
    assert_eq!(out.responses_at_vm1, 10, "10 perfect cycles");
    assert_eq!(
        out.frames_at_core, 0,
        "no packet strays from the benign path"
    );
}

#[test]
fn case_study_phase2_attack() {
    // "After 10 requests sent, we witness 20 requests arriving at fw1 and
    // 0 responses arriving at vm1."
    let out = case_study::run(Phase::Attack, &Profile::default(), 42, 10);
    assert_eq!(out.requests_sent, 10);
    assert_eq!(out.requests_at_fw1, 20);
    assert_eq!(out.responses_at_vm1, 0);
    assert!(out.frames_at_core >= 10);
}

#[test]
fn case_study_phase3_netco_restores_service() {
    // "Thus all 10 request response cycles completed successfully." The
    // mirrored copies reach the compare but never leave it.
    let out = case_study::run(Phase::NetCo, &Profile::default(), 42, 10);
    assert_eq!(out.requests_sent, 10);
    assert_eq!(out.requests_at_fw1, 10);
    assert_eq!(out.responses_at_vm1, 10);
    assert!(out.compare_suppressed >= 10);
    assert!(out.single_path_alarms >= 10);
}

#[test]
fn virtualized_netco_clean_run() {
    let out = virtual_netco::run_ping(&VirtualNetcoConfig::default(), &Profile::default(), 5);
    assert!(out.vendor_diverse);
    assert_eq!(out.tunnel_paths.len(), 3);
    assert_eq!(out.ping.received, out.ping.transmitted);
    assert_eq!(out.released_at_dst as u32, out.ping.transmitted);
}

#[test]
fn virtualized_netco_survives_a_malicious_tunnel_switch() {
    let cfg = VirtualNetcoConfig {
        corrupt_tunnel: Some((
            2,
            vec![(
                Behavior::CorruptPayload {
                    select: FlowMatch::any(),
                    every_nth: 1,
                },
                ActivationWindow::always(),
            )],
        )),
        ..VirtualNetcoConfig::default()
    };
    let out = virtual_netco::run_ping(&cfg, &Profile::default(), 5);
    assert_eq!(out.ping.received, out.ping.transmitted, "{out:?}");
    assert!(out.suppressed_at_dst > 0, "corrupted copies must be caught");
}

#[test]
fn virtualized_netco_paths_traverse_distinct_agg_columns() {
    let out = virtual_netco::run_ping(&VirtualNetcoConfig::default(), &Profile::functional(), 5);
    // Each tunnel's first hop after the source edge is a different
    // aggregation switch column (that is what vendor diversity means in
    // our fat-tree labeling).
    let mut first_hops: Vec<&String> = out.tunnel_paths.iter().map(|p| &p[1]).collect();
    first_hops.sort();
    first_hops.dedup();
    assert_eq!(first_hops.len(), 3, "paths: {:?}", out.tunnel_paths);
}
