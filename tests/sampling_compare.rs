//! The §IX sampling extension end to end: "a simple logic in the data
//! plane forwards a random subset of packets to a more thorough
//! out-of-band compare logic." Detection coverage scales with the sampling
//! rate; the data path forwards at full speed regardless.

use netco_adversary::{ActivationWindow, Behavior};
use netco_core::{Compare, SecurityEvent};
use netco_openflow::FlowMatch;
use netco_sim::SimDuration;
use netco_topo::{AdversarySpec, Profile, Scenario, ScenarioKind, H2_IP};
use netco_traffic::{UdpConfig, UdpSink, UdpSource};

const PACKETS: u64 = 400;

/// Runs sampled Central3 with a non-primary replica corrupting everything;
/// returns `(delivered unique, detection alarms, copies at the compare)`.
fn run(sample: f64) -> (u64, usize, u64) {
    let scenario = Scenario::build(ScenarioKind::Central3, Profile::functional(), 31)
        .with_sampling(sample)
        .with_adversary(AdversarySpec {
            replica_index: 1, // a non-primary replica corrupts its copies
            behaviors: vec![(
                Behavior::CorruptPayload {
                    select: FlowMatch::any(),
                    every_nth: 1,
                },
                ActivationWindow::always(),
            )],
        });
    let mut built = scenario.build_world(
        0,
        |nic| {
            UdpSource::new(
                nic,
                UdpConfig::new(H2_IP)
                    .with_rate(10_000_000)
                    .with_payload_len(300)
                    .with_send_cost(SimDuration::ZERO)
                    .with_duration(SimDuration::from_millis(
                        PACKETS * 300 * 8 / 10_000, // rate → duration for PACKETS
                    )),
            )
        },
        |nic| UdpSink::new(nic, 5001),
    );
    built.world.run_for(SimDuration::from_secs(2));
    let compare = built
        .world
        .device::<Compare>(built.compare.unwrap())
        .unwrap();
    let alarms = compare
        .events()
        .iter()
        .filter(|e| matches!(e.record, SecurityEvent::SinglePathPacket { .. }))
        .count();
    let received = built
        .world
        .device::<UdpSink>(built.h2)
        .unwrap()
        .report()
        .received;
    (received, alarms, compare.stats().received)
}

#[test]
fn full_sampling_detects_everything() {
    let (received, alarms, _) = run(1.0);
    // The honest primary delivers; every corrupted copy is flagged (it
    // never matches the two honest ones).
    assert!(received > 0);
    assert!(
        alarms as u64 >= received * 9 / 10,
        "≈all of {received} corrupted copies must be flagged, got {alarms} alarms"
    );
}

#[test]
fn half_sampling_detects_about_half() {
    let (received, alarms, _) = run(0.5);
    let fraction = alarms as f64 / received as f64;
    assert!(
        (0.3..=0.7).contains(&fraction),
        "expected ≈50% detection, got {fraction:.2} ({alarms}/{received})"
    );
}

#[test]
fn sampling_rate_scales_compare_load() {
    let (_, _, load_full) = run(1.0);
    let (_, _, load_tenth) = run(0.1);
    assert!(
        (load_tenth as f64) < load_full as f64 * 0.25,
        "10% sampling must slash compare load: {load_tenth} vs {load_full}"
    );
}

#[test]
fn zero_sampling_sees_nothing() {
    let (received, alarms, load) = run(0.0);
    assert!(received > 0, "data path unaffected");
    assert_eq!(alarms, 0);
    assert_eq!(load, 0);
}
