//! Dynamic ARP resolution end to end — including the interesting NetCo
//! case: a *broadcast* who-has traverses the robust combiner (duplicated
//! by the hub, voted by the compare) and exactly one copy reaches the far
//! host.

use netco_net::HostNic;
use netco_sim::SimDuration;
use netco_topo::{Profile, Scenario, ScenarioKind, H1_IP, H1_MAC, H2_IP, H2_MAC};
use netco_traffic::{IcmpEchoResponder, PingConfig, Pinger};

/// A NIC with an *empty* neighbor table — everything must be ARPed.
fn blank_nic(kind: Who) -> HostNic {
    match kind {
        Who::H1 => HostNic::new(H1_MAC, H1_IP),
        Who::H2 => HostNic::new(H2_MAC, H2_IP),
    }
}

enum Who {
    H1,
    H2,
}

fn run(kind: ScenarioKind) -> (u32, u32) {
    let scenario = Scenario::build(kind, Profile::functional(), 21);
    let mut built = scenario.build_world(
        0,
        |_prefilled| {
            Pinger::new(
                blank_nic(Who::H1),
                PingConfig::new(H2_IP)
                    .with_count(10)
                    .with_interval(SimDuration::from_millis(10)),
            )
        },
        |_prefilled| IcmpEchoResponder::new(blank_nic(Who::H2)),
    );
    built.world.run_for(SimDuration::from_secs(2));
    let report = built.world.device::<Pinger>(built.h1).unwrap().report();
    (report.transmitted, report.received)
}

#[test]
fn arp_resolves_across_linespeed() {
    let (tx, rx) = run(ScenarioKind::Linespeed);
    assert_eq!(tx, 10);
    assert_eq!(rx, 10);
}

#[test]
fn arp_broadcast_survives_the_combiner() {
    // The who-has is hubbed into 3 copies; the compare votes and releases
    // exactly one toward h2; the unicast reply takes the normal path.
    let (tx, rx) = run(ScenarioKind::Central3);
    assert_eq!(tx, 10);
    assert_eq!(rx, 10);
}

#[test]
fn arp_works_in_dup_mode_with_duplicate_replies() {
    // Without combining, h2 receives 3 who-has copies and answers each;
    // h1 simply learns the same mapping 3 times.
    let (tx, rx) = run(ScenarioKind::Dup3);
    assert_eq!(tx, 10);
    assert_eq!(rx, 10);
}
