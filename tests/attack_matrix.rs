//! Failure-injection matrix: every adversarial behaviour from the paper's
//! threat model (§II) against the prevention (k = 3) and detection (k = 2)
//! combiners, asserting the promised outcome — delivery despite the
//! attack, suppression of injected traffic, and the right alarms.

use netco_adversary::{ActivationWindow, Behavior};
use netco_core::{Compare, SecurityEvent};
use netco_net::{MacAddr, PortId};
use netco_openflow::FlowMatch;
use netco_sim::SimDuration;
use netco_topo::{AdversarySpec, Profile, Scenario, ScenarioKind, H2_IP};
use netco_traffic::{IcmpEchoResponder, PingConfig, Pinger};

const PINGS: u32 = 10;

struct MatrixOutcome {
    delivered: u32,
    single_path_alarms: usize,
    mismatch_alarms: usize,
    dos_alarms: usize,
    port_blocks: usize,
    suppressed: u64,
}

fn run(kind: ScenarioKind, behaviors: Vec<(Behavior, ActivationWindow)>) -> MatrixOutcome {
    let scenario = Scenario::build(kind, Profile::functional(), 99).with_adversary(AdversarySpec {
        replica_index: 1,
        behaviors,
    });
    let mut built = scenario.build_world(
        0,
        |nic| {
            Pinger::new(
                nic,
                PingConfig::new(H2_IP)
                    .with_count(PINGS)
                    .with_interval(SimDuration::from_millis(10)),
            )
        },
        IcmpEchoResponder::new,
    );
    built.world.run_for(SimDuration::from_secs(2));
    let delivered = built
        .world
        .device::<Pinger>(built.h1)
        .unwrap()
        .report()
        .received;
    let compare = built
        .world
        .device::<Compare>(built.compare.expect("combiner scenario"))
        .unwrap();
    let mut out = MatrixOutcome {
        delivered,
        single_path_alarms: 0,
        mismatch_alarms: 0,
        dos_alarms: 0,
        port_blocks: 0,
        suppressed: compare.stats().expired_unreleased,
    };
    for e in compare.events() {
        match e.record {
            SecurityEvent::SinglePathPacket { .. } => out.single_path_alarms += 1,
            SecurityEvent::DetectionMismatch { .. } => out.mismatch_alarms += 1,
            SecurityEvent::DosSuspected { .. } => out.dos_alarms += 1,
            SecurityEvent::PortBlocked { .. } => out.port_blocks += 1,
            _ => {}
        }
    }
    out
}

fn always(b: Behavior) -> Vec<(Behavior, ActivationWindow)> {
    vec![(b, ActivationWindow::always())]
}

// ---- Prevention mode (Central3) ----

#[test]
fn prevent_survives_dropping_replica() {
    let out = run(
        ScenarioKind::Central3,
        always(Behavior::Drop {
            select: FlowMatch::any(),
        }),
    );
    assert_eq!(out.delivered, PINGS, "2-of-3 must deliver");
}

#[test]
fn prevent_survives_rerouting_replica() {
    // The malicious replica forwards everything to the wrong port
    // (back toward s1 instead of s2 and vice versa).
    let out = run(
        ScenarioKind::Central3,
        vec![
            (
                Behavior::Reroute {
                    select: FlowMatch::any().with_dl_dst(netco_topo::H2_MAC),
                    to_port: PortId(1), // wrong direction
                },
                ActivationWindow::always(),
            ),
            (
                Behavior::Reroute {
                    select: FlowMatch::any().with_dl_dst(netco_topo::H1_MAC),
                    to_port: PortId(2),
                },
                ActivationWindow::always(),
            ),
        ],
    );
    assert_eq!(out.delivered, PINGS);
    // Misrouted copies arrive at the wrong guard as single-source packets
    // and must be suppressed with alarms.
    assert!(
        out.suppressed >= PINGS as u64,
        "suppressed {}",
        out.suppressed
    );
    assert!(out.single_path_alarms >= PINGS as usize);
}

#[test]
fn prevent_suppresses_mirrored_copies() {
    // Mirror exfiltration-style: requests entering from s1 (port 1) are
    // copied *back* toward s1 — the wrong direction, like the case study's
    // mirror toward the core.
    let out = run(
        ScenarioKind::Central3,
        always(Behavior::Mirror {
            select: FlowMatch::any().with_in_port(1),
            to_port: PortId(1),
        }),
    );
    assert_eq!(out.delivered, PINGS);
    assert!(
        out.suppressed > 0,
        "mirrored copies must die in the compare"
    );
    assert!(out.single_path_alarms > 0);
}

#[test]
fn prevent_survives_payload_corruption() {
    let out = run(
        ScenarioKind::Central3,
        always(Behavior::CorruptPayload {
            select: FlowMatch::any(),
            every_nth: 1,
        }),
    );
    assert_eq!(out.delivered, PINGS);
    // Each corrupted copy is a distinct single-source packet.
    assert!(out.single_path_alarms >= PINGS as usize);
}

#[test]
fn prevent_survives_vlan_rewriting() {
    let out = run(
        ScenarioKind::Central3,
        always(Behavior::SetVlan {
            select: FlowMatch::any(),
            vid: 666,
        }),
    );
    assert_eq!(
        out.delivered, PINGS,
        "isolation-breaking retags must not win"
    );
    assert!(out.suppressed >= PINGS as u64);
}

#[test]
fn prevent_survives_forged_destination() {
    let out = run(
        ScenarioKind::Central3,
        always(Behavior::RewriteDlDst {
            select: FlowMatch::any(),
            mac: MacAddr::local(0xbeef),
        }),
    );
    assert_eq!(out.delivered, PINGS);
}

#[test]
fn prevent_contains_replication_dos() {
    let out = run(
        ScenarioKind::Central3,
        always(Behavior::Replicate {
            select: FlowMatch::any(),
            copies: 64,
        }),
    );
    assert_eq!(out.delivered, PINGS, "duplicates must be absorbed");
    assert!(out.dos_alarms > 0, "repeat flood must raise a DoS alarm");
    assert!(out.port_blocks > 0, "compare must advise blocking the port");
}

#[test]
fn prevent_suppresses_unsolicited_crafting() {
    let crafted = netco_net::packet::builder::udp_frame(
        MacAddr::local(0xdead),
        netco_topo::H2_MAC,
        std::net::Ipv4Addr::new(66, 6, 6, 6),
        H2_IP,
        6666,
        6666,
        bytes::Bytes::from_static(b"crafted attack traffic"),
        None,
    );
    let out = run(
        ScenarioKind::Central3,
        always(Behavior::InjectCbr {
            frame: crafted,
            out_port: PortId(2),
            interval: SimDuration::from_millis(1),
        }),
    );
    assert_eq!(out.delivered, PINGS, "legit traffic unaffected");
    // The crafted frames are bit-identical, so they register as repeats of
    // one packet on one port: the compare suppresses the first, raises a
    // DoS alarm and advises blocking the port — after which the guard
    // drops the flood outright (§IV case 2).
    assert!(out.suppressed > 0, "injected packet must never be released");
    assert!(out.dos_alarms > 0, "flood must raise a DoS alarm");
    assert!(out.port_blocks > 0, "flood must trigger port-block advice");
}

#[test]
fn prevent_tolerates_delaying_replica() {
    // A delay below the hold time only adds latency.
    let out = run(
        ScenarioKind::Central3,
        always(Behavior::Delay {
            select: FlowMatch::any(),
            extra: SimDuration::from_millis(2),
        }),
    );
    assert_eq!(out.delivered, PINGS);
}

// ---- Detection mode (k = 2) ----

#[test]
fn detect_delivers_through_dropping_replica_with_alarms() {
    let out = run(
        ScenarioKind::Detect2,
        always(Behavior::Drop {
            select: FlowMatch::any(),
        }),
    );
    assert_eq!(
        out.delivered, PINGS,
        "detection still forwards first copies"
    );
    assert!(
        out.mismatch_alarms >= PINGS as usize,
        "missing copies must raise mismatch alarms (got {})",
        out.mismatch_alarms
    );
}

#[test]
fn detect_flags_corruption_but_cannot_prevent_it() {
    let out = run(
        ScenarioKind::Detect2,
        always(Behavior::CorruptPayload {
            select: FlowMatch::any(),
            every_nth: 1,
        }),
    );
    // Every cycle still completes (the honest copy is released; the
    // corrupted one is released too but fails the host checksum).
    assert_eq!(out.delivered, PINGS);
    assert!(out.mismatch_alarms > 0);
}

#[test]
fn quiet_network_raises_no_alarms() {
    let out = run(ScenarioKind::Central3, vec![]);
    assert_eq!(out.delivered, PINGS);
    assert_eq!(out.single_path_alarms, 0);
    assert_eq!(out.mismatch_alarms, 0);
    assert_eq!(out.dos_alarms, 0);
    assert_eq!(out.suppressed, 0);
}
