//! The POX deployment (compare as a controller app) under attack: the
//! control-plane path must provide the same protection semantics as the
//! central compare, just slower.

use netco_adversary::{ActivationWindow, Behavior};
use netco_controller::Controller;
use netco_core::{PoxCompareApp, SecurityEvent};
use netco_openflow::FlowMatch;
use netco_sim::SimDuration;
use netco_topo::{AdversarySpec, Profile, Scenario, ScenarioKind, H2_IP};
use netco_traffic::{IcmpEchoResponder, PingConfig, Pinger};

fn run_attacked(behaviors: Vec<(Behavior, ActivationWindow)>) -> (u32, u32, u64, usize) {
    let scenario = Scenario::build(ScenarioKind::Pox3, Profile::functional(), 12).with_adversary(
        AdversarySpec {
            replica_index: 1,
            behaviors,
        },
    );
    let mut built = scenario.build_world(
        0,
        |nic| {
            Pinger::new(
                nic,
                PingConfig::new(H2_IP)
                    .with_count(10)
                    .with_interval(SimDuration::from_millis(20)),
            )
        },
        IcmpEchoResponder::new,
    );
    built.world.run_for(SimDuration::from_secs(3));
    let report = built.world.device::<Pinger>(built.h1).unwrap().report();
    let controller = built
        .world
        .device::<Controller>(built.controller.expect("pox"))
        .unwrap();
    let app = controller.app::<PoxCompareApp>().expect("pox app");
    let alarms = app
        .events()
        .iter()
        .filter(|e| matches!(e.record, SecurityEvent::SinglePathPacket { .. }))
        .count();
    (
        report.transmitted,
        report.received,
        app.stats().expired_unreleased,
        alarms,
    )
}

#[test]
fn pox_compare_masks_a_dropping_replica() {
    let (tx, rx, _, _) = run_attacked(vec![(
        Behavior::Drop {
            select: FlowMatch::any(),
        },
        ActivationWindow::always(),
    )]);
    assert_eq!(tx, 10);
    assert_eq!(rx, 10);
}

#[test]
fn pox_compare_suppresses_corruption_with_alarms() {
    let (tx, rx, suppressed, alarms) = run_attacked(vec![(
        Behavior::CorruptPayload {
            select: FlowMatch::any(),
            every_nth: 1,
        },
        ActivationWindow::always(),
    )]);
    assert_eq!(tx, 10);
    assert_eq!(rx, 10);
    assert!(
        suppressed >= 20,
        "corrupted copies die at the controller: {suppressed}"
    );
    assert!(alarms >= 20);
}

#[test]
fn pox_every_copy_crosses_the_controller() {
    let scenario = Scenario::build(ScenarioKind::Pox3, Profile::functional(), 12);
    let mut built = scenario.build_world(
        0,
        |nic| {
            Pinger::new(
                nic,
                PingConfig::new(H2_IP)
                    .with_count(10)
                    .with_interval(SimDuration::from_millis(20)),
            )
        },
        IcmpEchoResponder::new,
    );
    built.world.run_for(SimDuration::from_secs(3));
    let controller = built
        .world
        .device::<Controller>(built.controller.unwrap())
        .unwrap();
    // 10 requests + 10 replies, 3 copies each = 60 packet-ins.
    assert_eq!(
        controller.packet_in_count(),
        60,
        "the POX deployment pipes every copy through the controller"
    );
}
