//! The §IX inband compare placement: the voting logic lives inside the
//! trusted guards — no dedicated compare host, no detour.

use netco_adversary::{ActivationWindow, Behavior};
use netco_core::GuardSwitch;
use netco_openflow::FlowMatch;
use netco_sim::SimDuration;
use netco_topo::{AdversarySpec, Direction, Profile, Scenario, ScenarioKind, H2_IP};
use netco_traffic::{IcmpEchoResponder, PingConfig, Pinger};

#[test]
fn inband_combiner_delivers_and_dedups() {
    let scenario = Scenario::build(ScenarioKind::Inband3, Profile::functional(), 8);
    let report = scenario.run_ping(PingConfig::default().with_count(20));
    assert_eq!(report.transmitted, 20);
    assert_eq!(report.received, 20);
}

#[test]
fn inband_combiner_stops_a_corrupting_replica() {
    let scenario = Scenario::build(ScenarioKind::Inband3, Profile::functional(), 8).with_adversary(
        AdversarySpec {
            replica_index: 2,
            behaviors: vec![(
                Behavior::CorruptPayload {
                    select: FlowMatch::any(),
                    every_nth: 1,
                },
                ActivationWindow::always(),
            )],
        },
    );
    let mut built = scenario.build_world(
        0,
        |nic| Pinger::new(nic, PingConfig::new(H2_IP).with_count(10)),
        IcmpEchoResponder::new,
    );
    built.world.run_for(SimDuration::from_secs(2));
    let report = built.world.device::<Pinger>(built.h1).unwrap().report();
    assert_eq!(report.received, 10);
    // The corrupted copies died inside the guards' embedded compares.
    let suppressed: u64 = built
        .guards
        .iter()
        .map(|&g| {
            built
                .world
                .device::<GuardSwitch>(g)
                .unwrap()
                .embedded_compare_stats()
                .expect("inband guards embed a compare")
                .expired_unreleased
        })
        .sum();
    assert!(suppressed >= 20, "suppressed {suppressed}");
}

#[test]
fn inband_beats_central_on_latency() {
    // The §IX motivation: no extra link hop and no dedicated compare
    // element on the path.
    let profile = Profile::default();
    let inband = Scenario::build(ScenarioKind::Inband3, profile.clone(), 8)
        .run_ping(PingConfig::default().with_count(30));
    let central = Scenario::build(ScenarioKind::Central3, profile, 8)
        .run_ping(PingConfig::default().with_count(30));
    let (i, c) = (inband.avg.unwrap(), central.avg.unwrap());
    assert!(i < c, "inband {i} must beat central {c}");
}

#[test]
fn inband_throughput_at_least_matches_central() {
    let profile = Profile::default();
    let inband = Scenario::build(ScenarioKind::Inband3, profile.clone(), 8).run_tcp(
        Direction::H1ToH2,
        SimDuration::from_millis(800),
        0,
    );
    let central = Scenario::build(ScenarioKind::Central3, profile, 8).run_tcp(
        Direction::H1ToH2,
        SimDuration::from_millis(800),
        0,
    );
    assert!(
        inband.mbps > central.mbps * 0.9,
        "inband {:.0} vs central {:.0}",
        inband.mbps,
        central.mbps
    );
}
