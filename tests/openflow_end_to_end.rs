//! Cross-crate OpenFlow control-plane scenarios: reactive learning over a
//! multi-switch topology, proactive routing, flow expiry under traffic,
//! and counter monitoring — all over the real wire codec.

use bytes::Bytes;
use netco_controller::apps::{FlowStatsMonitor, LearningSwitchApp, RuleSpec, StaticRoutingApp};
use netco_controller::Controller;
use netco_net::packet::builder;
use netco_net::{CpuModel, HostNic, LinkSpec, MacAddr, NodeId, PortId, World};
use netco_openflow::{Action, FlowMatch, OfPort, OfSwitch, SwitchConfig};
use netco_sim::SimDuration;
use netco_traffic::{IcmpEchoResponder, PingConfig, Pinger};
use std::net::Ipv4Addr;

const IP_A: Ipv4Addr = Ipv4Addr::new(10, 9, 0, 1);
const IP_B: Ipv4Addr = Ipv4Addr::new(10, 9, 0, 2);
const MAC_A: MacAddr = MacAddr::local(0x0a01);
const MAC_B: MacAddr = MacAddr::local(0x0a02);

fn nic(mac: MacAddr, ip: Ipv4Addr) -> HostNic {
    let mut n = HostNic::new(mac, ip);
    n.neighbors.extend([(IP_A, MAC_A), (IP_B, MAC_B)]);
    n
}

/// hostA — sw1 — sw2 — hostB, both switches managed by one controller.
fn two_switch_world(
    app: impl netco_controller::ControllerApp,
) -> (World, NodeId, NodeId, NodeId, NodeId, NodeId) {
    let mut w = World::new(77);
    let a = w.add_node(
        "a",
        Pinger::new(nic(MAC_A, IP_A), PingConfig::new(IP_B).with_count(10)),
        CpuModel::default(),
    );
    let b = w.add_node(
        "b",
        IcmpEchoResponder::new(nic(MAC_B, IP_B)),
        CpuModel::default(),
    );
    let sw1 = w.add_node(
        "sw1",
        OfSwitch::new(SwitchConfig::with_datapath_id(1)),
        CpuModel::default(),
    );
    let sw2 = w.add_node(
        "sw2",
        OfSwitch::new(SwitchConfig::with_datapath_id(2)),
        CpuModel::default(),
    );
    let ctl = w.add_node("ctl", Controller::new(app), CpuModel::default());
    w.connect(a, PortId(0), sw1, PortId(1), LinkSpec::ideal());
    w.connect(sw1, PortId(2), sw2, PortId(1), LinkSpec::ideal());
    w.connect(sw2, PortId(2), b, PortId(0), LinkSpec::ideal());
    for sw in [sw1, sw2] {
        w.connect_control(sw, ctl, Default::default());
        w.device_mut::<OfSwitch>(sw).unwrap().set_controller(ctl);
        w.device_mut::<Controller>(ctl).unwrap().manage(sw);
    }
    (w, a, b, sw1, sw2, ctl)
}

#[test]
fn learning_switches_converge_across_two_hops() {
    let (mut w, a, _b, sw1, sw2, ctl) = two_switch_world(LearningSwitchApp::new());
    w.run_for(SimDuration::from_secs(2));
    let report = w.device::<Pinger>(a).unwrap().report();
    assert_eq!(report.transmitted, 10);
    assert_eq!(report.received, 10, "reactive learning must converge");
    // After convergence both switches hold rules for both MACs.
    for sw in [sw1, sw2] {
        assert!(
            w.device::<OfSwitch>(sw).unwrap().table().len() >= 2,
            "{} should have learned both directions",
            w.node_name(sw)
        );
    }
    // And the steady state stops consulting the controller.
    let c = w.device::<Controller>(ctl).unwrap();
    assert!(
        c.packet_in_count() < 10,
        "only the first packets may reach the controller, saw {}",
        c.packet_in_count()
    );
}

#[test]
fn proactive_routing_never_consults_the_controller_for_data() {
    let mut app = StaticRoutingApp::new();
    // Rules computed offline; pushed on switch-up. Note the NodeIds are
    // assigned in creation order inside `two_switch_world`: sw1 = 2nd
    // switch node... we register rules after building instead.
    let (mut w, a, _b, sw1, sw2, ctl) = two_switch_world(StaticRoutingApp::new());
    let _ = &mut app;
    // Give the handshake + rule push a head start before traffic begins.
    w.device_mut::<Pinger>(a)
        .unwrap()
        .set_start_after(SimDuration::from_millis(50));
    {
        let c = w.device_mut::<Controller>(ctl).unwrap();
        let app = c.app_mut::<StaticRoutingApp>().unwrap();
        for (sw, a_port, b_port) in [(sw1, 1u16, 2u16), (sw2, 1, 2)] {
            app.add_rule(
                sw,
                RuleSpec::new(
                    100,
                    FlowMatch::any().with_dl_dst(MAC_B),
                    vec![Action::Output(OfPort::Physical(b_port))],
                ),
            );
            app.add_rule(
                sw,
                RuleSpec::new(
                    100,
                    FlowMatch::any().with_dl_dst(MAC_A),
                    vec![Action::Output(OfPort::Physical(a_port))],
                ),
            );
        }
    }
    w.run_for(SimDuration::from_secs(2));
    let report = w.device::<Pinger>(a).unwrap().report();
    assert_eq!(report.received, 10);
    let c = w.device::<Controller>(ctl).unwrap();
    assert_eq!(
        c.packet_in_count(),
        0,
        "proactive rules must keep all data off the controller"
    );
    assert_eq!(c.app::<StaticRoutingApp>().unwrap().pushed_count(), 4);
}

#[test]
fn idle_timeout_expires_learned_rules_and_relearning_works() {
    let (mut w, a, _b, sw1, _sw2, _ctl) = two_switch_world({
        let mut app = LearningSwitchApp::new();
        app.idle_timeout_s = 1;
        app
    });
    w.run_for(SimDuration::from_secs(2)); // ping burst finishes < 1 s
    assert_eq!(w.device::<Pinger>(a).unwrap().report().received, 10);
    // After > 1 s of silence the learned rules expire.
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(
        w.device::<OfSwitch>(sw1).unwrap().table().len(),
        0,
        "idle rules must expire"
    );
}

#[test]
fn stats_monitor_tracks_multi_switch_traffic() {
    // Preinstall static rules; the monitor app polls both switches.
    let mut w = World::new(78);
    let a = w.add_node(
        "a",
        Pinger::new(nic(MAC_A, IP_A), PingConfig::new(IP_B).with_count(7)),
        CpuModel::default(),
    );
    let b = w.add_node(
        "b",
        IcmpEchoResponder::new(nic(MAC_B, IP_B)),
        CpuModel::default(),
    );
    let mk_switch = |dpid: u64| {
        let mut sw = OfSwitch::new(SwitchConfig::with_datapath_id(dpid));
        sw.preinstall(netco_openflow::FlowEntry::new(
            100,
            FlowMatch::any().with_dl_dst(MAC_B),
            vec![Action::Output(OfPort::Physical(2))],
        ));
        sw.preinstall(netco_openflow::FlowEntry::new(
            100,
            FlowMatch::any().with_dl_dst(MAC_A),
            vec![Action::Output(OfPort::Physical(1))],
        ));
        sw
    };
    let sw1 = w.add_node("sw1", mk_switch(1), CpuModel::default());
    let sw2 = w.add_node("sw2", mk_switch(2), CpuModel::default());
    let ctl = w.add_node(
        "ctl",
        Controller::new(FlowStatsMonitor::new()).with_tick(SimDuration::from_millis(25)),
        CpuModel::default(),
    );
    w.connect(a, PortId(0), sw1, PortId(1), LinkSpec::ideal());
    w.connect(sw1, PortId(2), sw2, PortId(1), LinkSpec::ideal());
    w.connect(sw2, PortId(2), b, PortId(0), LinkSpec::ideal());
    for sw in [sw1, sw2] {
        w.connect_control(sw, ctl, Default::default());
        w.device_mut::<OfSwitch>(sw).unwrap().set_controller(ctl);
        w.device_mut::<Controller>(ctl).unwrap().manage(sw);
    }
    w.run_for(SimDuration::from_secs(1));
    let monitor = w
        .device::<Controller>(ctl)
        .unwrap()
        .app::<FlowStatsMonitor>()
        .unwrap();
    // 7 requests + 7 replies through each switch.
    assert_eq!(monitor.total_packets(sw1), 14);
    assert_eq!(monitor.total_packets(sw2), 14);
}

#[test]
fn packet_out_floods_reach_every_port() {
    // A controller-driven flood from a buffered miss: the learning app's
    // first-packet flood must reach both other ports of a 3-host switch.
    let mut w = World::new(79);
    let hosts: Vec<NodeId> = (0..3)
        .map(|i| {
            w.add_node(
                format!("h{i}"),
                netco_net::testutil::CollectorDevice::default(),
                CpuModel::default(),
            )
        })
        .collect();
    let sw = w.add_node(
        "sw",
        OfSwitch::new(SwitchConfig::with_datapath_id(9)),
        CpuModel::default(),
    );
    let ctl = w.add_node(
        "ctl",
        Controller::new(LearningSwitchApp::new()),
        CpuModel::default(),
    );
    for (i, &h) in hosts.iter().enumerate() {
        w.connect(h, PortId(0), sw, PortId(i as u16 + 1), LinkSpec::ideal());
    }
    w.connect_control(sw, ctl, Default::default());
    w.device_mut::<OfSwitch>(sw).unwrap().set_controller(ctl);
    w.device_mut::<Controller>(ctl).unwrap().manage(sw);
    w.run_for(SimDuration::from_millis(20));
    let frame = builder::udp_frame(
        MAC_A,
        MacAddr::local(0xffff), // unknown destination → flood
        IP_A,
        IP_B,
        5,
        6,
        Bytes::from_static(b"flood me"),
        None,
    );
    w.inject_frame(sw, PortId(1), frame);
    w.run_for(SimDuration::from_millis(20));
    use netco_net::testutil::CollectorDevice;
    assert_eq!(
        w.device::<CollectorDevice>(hosts[0]).unwrap().frames.len(),
        0
    );
    assert_eq!(
        w.device::<CollectorDevice>(hosts[1]).unwrap().frames.len(),
        1
    );
    assert_eq!(
        w.device::<CollectorDevice>(hosts[2]).unwrap().frames.len(),
        1
    );
}
